// Google-benchmark microbenchmarks of the substrates: tensor kernels,
// tokenizer throughput, model forward passes (P1, P2 with/without cached
// latents), and database access primitives. Not a paper figure — these
// bound the cost model of the larger benches.
//
// Before the google-benchmark suite runs, main() emits a machine-readable
// BENCH_substrate.json: a GEMM GFLOP/s sweep over the Tiny- and Paper-
// config encoder shapes (naive serial reference vs blocked kernel vs
// blocked + intra-op pool) plus end-to-end Fig. 4-style wall-ms of the
// pipeline executor. This file seeds the perf trajectory across PRs.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include <signal.h>

#include "bench_common.h"
#include "clouddb/database.h"
#include "obs/export.h"
#include "common/thread_pool.h"
#include "core/cost_model.h"
#include "core/taste_detector.h"
#include "data/table_generator.h"
#include "model/adtd.h"
#include "serve/router.h"
#include "tensor/exec_context.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/quant.h"
#include "text/wordpiece.h"

namespace taste {
namespace {

// ---- tensor kernels ---------------------------------------------------------

void BM_MatMul(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn({n, n}, rng);
  tensor::Tensor b = tensor::Tensor::Randn({n, n}, rng);
  tensor::NoGradGuard ng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_Softmax(benchmark::State& state) {
  Rng rng(2);
  tensor::Tensor x = tensor::Tensor::Randn({state.range(0), 128}, rng);
  tensor::NoGradGuard ng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::Softmax(x));
  }
}
BENCHMARK(BM_Softmax)->Arg(64)->Arg(256);

void BM_LayerNorm(benchmark::State& state) {
  Rng rng(3);
  tensor::Tensor x = tensor::Tensor::Randn({state.range(0), 64}, rng);
  tensor::Tensor g = tensor::Tensor::Full({64}, 1.0f);
  tensor::Tensor b = tensor::Tensor::Zeros({64});
  tensor::NoGradGuard ng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::LayerNorm(x, g, b));
  }
}
BENCHMARK(BM_LayerNorm)->Arg(64)->Arg(256);

void BM_AutogradBackward(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    tensor::Tensor a = tensor::Tensor::Randn({32, 32}, rng, 1.0f, true);
    tensor::Tensor b = tensor::Tensor::Randn({32, 32}, rng, 1.0f, true);
    tensor::Tensor loss = tensor::MeanAll(tensor::Square(tensor::MatMul(a, b)));
    loss.Backward();
    benchmark::DoNotOptimize(a.grad().data());
  }
}
BENCHMARK(BM_AutogradBackward);

// ---- shared fixture for model-level benches ------------------------------------

struct Fixture {
  data::Dataset dataset;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer;
  std::unique_ptr<model::AdtdModel> model;
  std::unique_ptr<clouddb::SimulatedDatabase> db;

  static Fixture& Get() {
    static Fixture* f = [] {
      auto* fx = new Fixture();
      fx->dataset =
          data::GenerateDataset(data::DatasetProfile::WikiLike(40));
      text::WordPieceTrainer trainer({.vocab_size = 600});
      for (const auto& d : data::BuildCorpusDocuments(fx->dataset)) {
        trainer.AddDocument(d);
      }
      fx->tokenizer =
          std::make_unique<text::WordPieceTokenizer>(trainer.Train());
      model::AdtdConfig cfg = model::AdtdConfig::Tiny(
          fx->tokenizer->vocab().size(),
          data::SemanticTypeRegistry::Default().size());
      Rng rng(5);
      fx->model = std::make_unique<model::AdtdModel>(cfg, rng);
      clouddb::CostModel cost;
      cost.time_scale = 0.0;
      fx->db = std::make_unique<clouddb::SimulatedDatabase>(cost);
      TASTE_CHECK(fx->db->IngestDataset(fx->dataset).ok());
      return fx;
    }();
    return *f;
  }
};

void BM_TokenizerEncode(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  std::string text =
      "customer_email_address varchar(255) primary contact email "
      "james.smith@example.com 555-0199 2024-01-01";
  int64_t bytes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.tokenizer->Encode(text));
    bytes += static_cast<int64_t>(text.size());
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_TokenizerEncode);

void BM_MetadataTowerForward(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  auto conn = f.db->Connect();
  auto meta = conn->GetTableMetadata(f.dataset.tables[0].name);
  TASTE_CHECK(meta.ok());
  model::InputEncoder encoder(f.tokenizer.get(), f.model->config().input);
  model::EncodedMetadata em = encoder.EncodeMetadata(*meta);
  tensor::NoGradGuard ng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model->ForwardMetadata(em));
  }
}
BENCHMARK(BM_MetadataTowerForward);

void BM_ContentTowerForward_CachedLatents(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  auto conn = f.db->Connect();
  auto meta = conn->GetTableMetadata(f.dataset.tables[0].name);
  TASTE_CHECK(meta.ok());
  model::InputEncoder encoder(f.tokenizer.get(), f.model->config().input);
  model::EncodedMetadata em = encoder.EncodeMetadata(*meta);
  std::map<int, std::vector<std::string>> content;
  for (int c = 0; c < em.num_columns; ++c) {
    content[c] = f.dataset.tables[0].columns[c].values;
  }
  model::EncodedContent ec = encoder.EncodeContent(em, content);
  tensor::NoGradGuard ng;
  auto cached = f.model->ForwardMetadata(em);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model->ForwardContent(ec, em, cached));
  }
}
BENCHMARK(BM_ContentTowerForward_CachedLatents);

void BM_ContentTowerForward_RecomputedLatents(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  auto conn = f.db->Connect();
  auto meta = conn->GetTableMetadata(f.dataset.tables[0].name);
  TASTE_CHECK(meta.ok());
  model::InputEncoder encoder(f.tokenizer.get(), f.model->config().input);
  model::EncodedMetadata em = encoder.EncodeMetadata(*meta);
  std::map<int, std::vector<std::string>> content;
  for (int c = 0; c < em.num_columns; ++c) {
    content[c] = f.dataset.tables[0].columns[c].values;
  }
  model::EncodedContent ec = encoder.EncodeContent(em, content);
  tensor::NoGradGuard ng;
  for (auto _ : state) {
    // The "TASTE w/o caching" path: the metadata tower runs again.
    auto enc = f.model->ForwardMetadata(em);
    benchmark::DoNotOptimize(f.model->ForwardContent(ec, em, enc));
  }
}
BENCHMARK(BM_ContentTowerForward_RecomputedLatents);

void BM_MetadataFetch(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  auto conn = f.db->Connect();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        conn->GetTableMetadata(f.dataset.tables[i % 40].name));
    ++i;
  }
}
BENCHMARK(BM_MetadataFetch);

void BM_ColumnScan(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  auto conn = f.db->Connect();
  const auto& table = f.dataset.tables[0];
  std::vector<std::string> cols;
  for (const auto& c : table.columns) cols.push_back(c.name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        conn->ScanColumns(table.name, cols, {.limit_rows = 50}));
  }
}
BENCHMARK(BM_ColumnScan);

void BM_EndToEndDetectTable(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  core::TasteDetector det(f.model.get(), f.tokenizer.get(), {});
  auto conn = f.db->Connect();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        det.DetectTable(conn.get(), f.dataset.tables[i % 40].name));
    ++i;
  }
}
BENCHMARK(BM_EndToEndDetectTable);

// ---- BENCH_substrate.json ---------------------------------------------------

struct GemmCase {
  const char* name;  // <config>_<gemm site>
  int64_t m, n, k;
};

// The three GEMM shapes that dominate one encoder layer (QKV projection and
// the two feed-forward matmuls) at the Tiny test config (H=48, I=128,
// ~128 tokens) and the paper's TinyBERT config (H=312, I=1200, Wmax=512).
constexpr GemmCase kGemmCases[] = {
    {"tiny_qkv", 128, 48, 48},     {"tiny_ffn1", 128, 128, 48},
    {"tiny_ffn2", 128, 48, 128},   {"paper_qkv", 512, 312, 312},
    {"paper_ffn1", 512, 1200, 312}, {"paper_ffn2", 512, 312, 1200},
};

// Best batch-average over several batches: the minimum is the standard
// microbench estimator for machines with scheduler noise — overhead only
// ever adds time.
template <typename Fn>
double TimeGemmMs(const Fn& fn, int reps) {
  fn();  // warm up (and fault in the packing scratch)
  double best = 0.0;
  for (int batch = 0; batch < 5; ++batch) {
    Stopwatch watch;
    for (int r = 0; r < reps; ++r) fn();
    const double ms = watch.ElapsedMillis() / reps;
    if (batch == 0 || ms < best) best = ms;
  }
  return best;
}

void WriteSubstrateJson() {
  const int hw_threads =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  ThreadPool intra_pool(static_cast<size_t>(hw_threads));

  bench::JsonWriter json;
  json.BeginObject();
  json.Field("bench", std::string("substrate"));
  json.Field("hardware_threads", hw_threads);

  std::printf("GEMM sweep (%d hardware threads):\n", hw_threads);
  json.BeginArray("gemm");
  for (const GemmCase& s : kGemmCases) {
    Rng rng(7);
    std::vector<float> a(static_cast<size_t>(s.m * s.k));
    std::vector<float> b(static_cast<size_t>(s.k * s.n));
    std::vector<float> c(static_cast<size_t>(s.m * s.n), 0.0f);
    for (auto& x : a) x = static_cast<float>(rng.NextGaussian());
    for (auto& x : b) x = static_cast<float>(rng.NextGaussian());
    const int reps = s.m * s.n * s.k < (1 << 22) ? 50 : 10;
    const double serial_ms = TimeGemmMs(
        [&] {
          tensor::kernels::GemmAccRef(a.data(), b.data(), c.data(), s.m, s.n,
                                      s.k, false, false);
        },
        reps);
    const double blocked_ms = TimeGemmMs(
        [&] {
          tensor::kernels::GemmAcc(a.data(), b.data(), c.data(), s.m, s.n,
                                   s.k, false, false, nullptr);
        },
        reps);
    const double parallel_ms = TimeGemmMs(
        [&] {
          tensor::kernels::GemmAcc(a.data(), b.data(), c.data(), s.m, s.n,
                                   s.k, false, false, &intra_pool);
        },
        reps);
    const double mflop = 2.0 * s.m * s.n * s.k / 1e6;
    json.BeginObject();
    json.Field("shape", std::string(s.name));
    json.Field("m", s.m);
    json.Field("n", s.n);
    json.Field("k", s.k);
    json.Field("serial_ms", serial_ms);
    json.Field("serial_gflops", mflop / serial_ms);
    json.Field("blocked_ms", blocked_ms);
    json.Field("blocked_gflops", mflop / blocked_ms);
    json.Field("parallel_ms", parallel_ms);
    json.Field("parallel_gflops", mflop / parallel_ms);
    json.Field("speedup_blocked", serial_ms / blocked_ms);
    json.Field("speedup_parallel", serial_ms / parallel_ms);
    json.EndObject();
    std::printf(
        "  %-11s serial %8.3f ms (%6.2f GF/s)  blocked %8.3f ms "
        "(%6.2f GF/s, %.2fx)  +pool %8.3f ms (%6.2f GF/s, %.2fx)\n",
        s.name, serial_ms, mflop / serial_ms, blocked_ms, mflop / blocked_ms,
        serial_ms / blocked_ms, parallel_ms, mflop / parallel_ms,
        serial_ms / parallel_ms);
  }
  json.EndArray();

  // End-to-end Fig. 4-style wall clock: the full detector over the micro
  // fixture's tables, sequential vs pipelined executor (instant cost model,
  // so this is pure compute — the substrate's share of Fig. 4).
  Fixture& f = Fixture::Get();
  core::TasteDetector det(f.model.get(), f.tokenizer.get(), {});
  std::vector<std::string> tables;
  for (const auto& t : f.dataset.tables) tables.push_back(t.name);

  pipeline::PipelineExecutor seq(&det, f.db.get(), {.pipelined = false});
  TASTE_CHECK(seq.Run(tables).ok());
  pipeline::PipelineExecutor pip(&det, f.db.get(), {.pipelined = true});
  TASTE_CHECK(pip.Run(tables).ok());

  json.BeginObject("end_to_end");
  json.Field("tables", static_cast<int64_t>(tables.size()));
  json.Field("sequential_wall_ms", seq.stats().wall_ms);
  json.Field("pipelined_wall_ms", pip.stats().wall_ms);
  json.EndObject();

  // Cross-table P2 micro-batching: one packed content-tower forward over B
  // column-chunks vs B sequential forwards — byte-identical outputs (see
  // tests/batching_diff_test.cc), so the only question is throughput. The
  // model-level sweep isolates the packed-GEMM amortization (one B-panel
  // pack serves every batched row); the serving rows measure the same knob
  // end to end through the serving scheduler at 4 infer workers.
  {
    struct Chunk {
      model::EncodedMetadata em;
      model::EncodedContent ec;
      model::AdtdModel::MetadataEncoding enc;
    };
    // Two chunk profiles: the model default (compute-bound sequences, the
    // packed GEMMs are already saturated) and the paper Sec. 6.8 small-n/
    // small-l serving point (n=2, l=2: many short chunks, where per-op
    // dispatch overhead dominates and coalescing pays).
    auto harvest = [&](const model::InputConfig& icfg, int l) {
      model::InputEncoder encoder(f.tokenizer.get(), icfg);
      std::vector<std::unique_ptr<Chunk>> chunks;
      auto conn = f.db->Connect();
      for (int t = 0; t < 16 && chunks.size() < 16; ++t) {
        auto meta = conn->GetTableMetadata(f.dataset.tables[t].name);
        TASTE_CHECK(meta.ok());
        for (const auto& part : model::SplitWideTable(*meta, l)) {
          if (chunks.size() >= 16) break;
          auto ch = std::make_unique<Chunk>();
          ch->em = encoder.EncodeMetadata(part);
          std::map<int, std::vector<std::string>> content;
          for (int c = 0; c < ch->em.num_columns; ++c) {
            content[c] =
                f.dataset.tables[t].columns[ch->em.column_ordinals[c]].values;
          }
          ch->ec = encoder.EncodeContent(ch->em, content);
          ch->enc = f.model->ForwardMetadata(ch->em);
          chunks.push_back(std::move(ch));
        }
      }
      return chunks;
    };
    // (total_tokens, batched_ms) pairs harvested from the sweeps below;
    // feeds the serving cost model's least-squares calibration.
    std::vector<std::pair<int64_t, double>> cost_samples;
    auto sweep = [&](const char* key,
                     const std::vector<std::unique_ptr<Chunk>>& chunks) {
      std::printf("P2 micro-batching %s (packed batch vs sequential):\n", key);
      json.BeginArray(key);
      for (int bsize : {1, 2, 4, 8, 16}) {
        std::vector<model::AdtdModel::P2BatchItem> items;
        for (int i = 0; i < bsize; ++i) {
          Chunk& ch = *chunks[static_cast<size_t>(i) % chunks.size()];
          items.push_back({&ch.ec, &ch.em, &ch.enc});
        }
        const int reps = std::max(1, 32 / bsize);  // ~constant work/batch
        const double seq_ms = TimeGemmMs(
            [&] {
              for (const auto& it : items) {
                benchmark::DoNotOptimize(f.model->ForwardContent(
                    *it.content, *it.meta, *it.meta_encoding));
              }
            },
            reps);
        const double batch_ms = TimeGemmMs(
            [&] {
              benchmark::DoNotOptimize(f.model->ForwardContentBatch(items));
            },
            reps);
        int64_t total_tokens = 0;
        for (const auto& it : items) {
          total_tokens += static_cast<int64_t>(it.content->token_ids.size());
        }
        cost_samples.emplace_back(total_tokens, batch_ms);
        json.BeginObject();
        json.Field("batch_size", static_cast<int64_t>(bsize));
        json.Field("sequential_ms", seq_ms);
        json.Field("batched_ms", batch_ms);
        json.Field("speedup", seq_ms / batch_ms);
        json.EndObject();
        std::printf("  B=%-3d sequential %8.3f ms  batched %8.3f ms  %.2fx\n",
                    bsize, seq_ms, batch_ms, seq_ms / batch_ms);
      }
      json.EndArray();
    };
    tensor::NoGradGuard ng;
    sweep("p2_batch", harvest(f.model->config().input,
                              f.model->config().input.column_split_threshold));
    model::InputConfig small = f.model->config().input;
    small.cells_per_column = 2;
    sweep("p2_batch_small", harvest(small, /*l=*/2));

    // Calibrate the serving cost model from the sweep samples and emit the
    // fit: ms(batch) = overhead_ms + ms_per_token * total_tokens. The
    // scheduler's defaults (core/cost_model.h) were fit from exactly this
    // section of a committed BENCH_substrate.json.
    core::P2CostModel cm;
    const bool calibrated = cm.Calibrate(cost_samples);
    json.BeginObject("cost_model");
    json.Field("calibrated", calibrated);
    json.Field("samples", static_cast<int64_t>(cost_samples.size()));
    json.Field("overhead_ms", cm.params().overhead_ms);
    json.Field("ms_per_token", cm.params().ms_per_token);
    json.EndObject();
    std::printf(
        "cost model fit (%zu samples): overhead %.4f ms + %.5f ms/token%s\n",
        cost_samples.size(), cm.params().overhead_ms, cm.params().ms_per_token,
        calibrated ? "" : " (fit failed; defaults kept)");
  }

  // Int8 P2: the --p2-dtype=int8 content forward against fp32 at the PAPER
  // tower shape (L=4, H=312, I=1200 — the Tiny fixture's GEMMs are too
  // small to show the kernel, and the paper shape is what serving runs).
  // Weights are prepacked once (PrepackQuantWeights, as model load does);
  // the sweep times the same ForwardContentBatch under an fp32 vs an int8
  // ExecContext. tools/bench_check.py gates the speedup (hard floor 2.5x,
  // advisory 3x) when a SIMD kernel is compiled in. The int8 timing samples
  // also refit the serving cost model; DefaultInt8Params (core/cost_model.h)
  // were taken from the "cost_model_int8" section of a committed run.
  {
    tensor::NoGradGuard ng;
    model::AdtdConfig pcfg = model::AdtdConfig::Paper(
        static_cast<int>(f.tokenizer->vocab().size()),
        static_cast<int>(data::SemanticTypeRegistry::Default().size()));
    Rng prng(17);
    model::AdtdModel pmodel(pcfg, prng);
    const int64_t packed_bytes = pmodel.PrepackQuantWeights();

    struct Chunk {
      model::EncodedMetadata em;
      model::EncodedContent ec;
      model::AdtdModel::MetadataEncoding enc;
    };
    // The Sec. 6.8 serving profile (n=2, l=2): short chunks, the shape the
    // scheduler actually batches. Latents come from THIS model's metadata
    // tower — cross-attention reads them during the content forward.
    model::InputConfig icfg = pcfg.input;
    icfg.cells_per_column = 2;
    model::InputEncoder encoder(f.tokenizer.get(), icfg);
    std::vector<std::unique_ptr<Chunk>> chunks;
    auto conn = f.db->Connect();
    for (int t = 0; t < 16 && chunks.size() < 16; ++t) {
      auto meta = conn->GetTableMetadata(f.dataset.tables[t].name);
      TASTE_CHECK(meta.ok());
      for (const auto& part : model::SplitWideTable(*meta, /*max_columns=*/2)) {
        if (chunks.size() >= 16) break;
        auto ch = std::make_unique<Chunk>();
        ch->em = encoder.EncodeMetadata(part);
        std::map<int, std::vector<std::string>> content;
        for (int c = 0; c < ch->em.num_columns; ++c) {
          content[c] =
              f.dataset.tables[t].columns[ch->em.column_ordinals[c]].values;
        }
        ch->ec = encoder.EncodeContent(ch->em, content);
        ch->enc = pmodel.ForwardMetadata(ch->em);
        chunks.push_back(std::move(ch));
      }
    }

    tensor::ExecContext fp32_ctx({.no_grad = true});
    tensor::ExecContext::Options int8_opt;
    int8_opt.no_grad = true;
    int8_opt.p2_dtype = tensor::P2Dtype::kInt8;
    tensor::ExecContext int8_ctx(int8_opt);

    std::vector<std::pair<int64_t, double>> int8_samples;
    double fp32_total = 0.0, int8_total = 0.0;
    std::printf("P2 int8 vs fp32 at paper shape (kernel %s, %lld KiB packed):\n",
                tensor::quant::QuantKernelName(tensor::quant::BestQuantKernel()),
                static_cast<long long>(packed_bytes / 1024));
    json.BeginObject("int8_p2");
    json.Field("kernel",
               std::string(tensor::quant::QuantKernelName(
                   tensor::quant::BestQuantKernel())));
    json.Field("packed_kib", packed_bytes / 1024);
    json.BeginArray("sweep");
    for (int bsize : {1, 2, 4, 8}) {
      std::vector<model::AdtdModel::P2BatchItem> items;
      int64_t total_tokens = 0;
      for (int i = 0; i < bsize; ++i) {
        Chunk& ch = *chunks[static_cast<size_t>(i) % chunks.size()];
        items.push_back({&ch.ec, &ch.em, &ch.enc});
        total_tokens += static_cast<int64_t>(ch.ec.token_ids.size());
      }
      const int reps = std::max(1, 8 / bsize);
      const double fp32_ms = TimeGemmMs(
          [&] {
            benchmark::DoNotOptimize(
                pmodel.ForwardContentBatch(items, &fp32_ctx));
          },
          reps);
      const double int8_ms = TimeGemmMs(
          [&] {
            benchmark::DoNotOptimize(
                pmodel.ForwardContentBatch(items, &int8_ctx));
          },
          reps);
      fp32_total += fp32_ms;
      int8_total += int8_ms;
      int8_samples.emplace_back(total_tokens, int8_ms);
      json.BeginObject();
      json.Field("batch_size", static_cast<int64_t>(bsize));
      json.Field("tokens", total_tokens);
      json.Field("fp32_ms", fp32_ms);
      json.Field("int8_ms", int8_ms);
      json.Field("speedup", fp32_ms / int8_ms);
      json.EndObject();
      std::printf("  B=%-3d fp32 %8.3f ms  int8 %8.3f ms  %.2fx\n", bsize,
                  fp32_ms, int8_ms, fp32_ms / int8_ms);
    }
    json.EndArray();
    json.Field("speedup", fp32_total / int8_total);
    json.EndObject();
    std::printf("  overall int8 speedup %.2fx\n", fp32_total / int8_total);

    core::P2CostModel icm;
    const bool int8_calibrated = icm.Calibrate(int8_samples);
    json.BeginObject("cost_model_int8");
    json.Field("calibrated", int8_calibrated);
    json.Field("samples", static_cast<int64_t>(int8_samples.size()));
    json.Field("overhead_ms", icm.params().overhead_ms);
    json.Field("ms_per_token", icm.params().ms_per_token);
    json.EndObject();
    std::printf(
        "int8 cost model fit (%zu samples): overhead %.4f ms + %.5f "
        "ms/token%s\n",
        int8_samples.size(), icm.params().overhead_ms, icm.params().ms_per_token,
        int8_calibrated ? "" : " (fit failed; defaults kept)");
  }

  // Serving level: the pipelined executor at 4 infer workers with the
  // latent cache sharded + continuous-batching scheduler armed, vs the
  // exact legacy dispatch — identical result bytes either way, wall clock
  // is the whole story. Uses the small-chunk serving profile (n=2, l=2
  // overrides) over a WIDE-table corpus: cloud tables are wide (paper
  // Sec. 1), wide tables split into many short P2 chunks, and those chunks
  // are exactly what the scheduler's group submission packs into shared
  // forwards. The fixture's 2-8 column corpus stays with the other
  // sections; serving gets its own 40 wide tables.
  {
    data::DatasetProfile wide = data::DatasetProfile::WikiLike(40);
    wide.min_columns = 6;
    wide.max_columns = 16;
    wide.seed = 11;
    data::Dataset wide_ds = data::GenerateDataset(wide);
    clouddb::CostModel wide_cost;
    wide_cost.time_scale = 0.0;
    clouddb::SimulatedDatabase wide_db(wide_cost);
    TASTE_CHECK(wide_db.IngestDataset(wide_ds).ok());
    std::vector<std::string> wide_tables;
    for (const auto& t : wide_ds.tables) wide_tables.push_back(t.name);

    json.BeginObject("p2_serving");
    double off_ms = 0.0, on_ms = 0.0;
    for (const bool batching : {false, true}) {
      core::TasteOptions topt;
      topt.override_cells_per_column = 2;  // n
      topt.override_split_threshold = 2;   // l
      topt.cache_shards = batching ? 4 : 1;
      core::TasteDetector sdet(f.model.get(), f.tokenizer.get(), topt);
      pipeline::PipelineOptions popt;
      popt.prep_threads = 2;
      popt.infer_threads = 4;
      popt.scheduling.enabled = batching;
      // Default knobs: group submission means one table can contribute
      // several chunks to a forward, so batches larger than the worker
      // count DO materialize.
      popt.scheduling.max_items = 8;
      popt.scheduling.max_inflight_batches = 0;  // auto (profitable count)
      // Best of three runs: a single pass on a shared box is dominated by
      // scheduler noise.
      double best = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        pipeline::PipelineExecutor exec(&sdet, &wide_db, popt);
        TASTE_CHECK(exec.Run(wide_tables).ok());
        const double wall = exec.stats().wall_ms;
        if (rep == 0 || wall < best) best = wall;
      }
      (batching ? on_ms : off_ms) = best;
    }
    json.Field("infer_threads", static_cast<int64_t>(4));
    json.Field("tables", static_cast<int64_t>(wide_tables.size()));
    json.Field("batching_off_wall_ms", off_ms);
    json.Field("batching_on_wall_ms", on_ms);
    json.Field("speedup", off_ms / on_ms);
    json.EndObject();
    std::printf(
        "serving @4 infer workers (n=2, l=2): batching off %.1f ms, "
        "on %.1f ms (%.2fx)\n",
        off_ms, on_ms, off_ms / on_ms);
  }
  // Multi-process serving tier (DESIGN.md §10): the same batch scattered
  // across forked replica workers by the supervising router. Runs here, in
  // main() before benchmark::Initialize, so fork happens at a known-safe
  // point. Each replica count forks fresh workers (cold latent caches —
  // comparable across rows); the parent detector never runs a table itself,
  // so every row starts from the same image. The failover row re-runs at
  // full strength with a crash injected into the owner of the first table
  // and reports how long the supervisor took to restore the replica.
  {
    core::TasteOptions mp_topt;
    core::TasteDetector mp_det(f.model.get(), f.tokenizer.get(), mp_topt);
    serve::WorkerEnv env;
    env.detector = &mp_det;
    env.db = f.db.get();

    std::printf("multi-process serving (replicas x %zu tables):\n",
                tables.size());
    json.BeginObject("p2_serving_mp");
    json.Field("tables", static_cast<int64_t>(tables.size()));
    json.BeginArray("rows");
    double wall1 = 0.0, wall4 = 0.0;
    for (const int replicas : {1, 2, 4}) {
      serve::RouterOptions ropt;
      ropt.supervisor.replicas = replicas;
      double best = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        serve::Router router(env, ropt);
        TASTE_CHECK(router.Start().ok());
        pipeline::BatchResult batch = router.RunBatch(tables);
        for (const auto& t : batch.tables) {
          TASTE_CHECK(t.outcome == pipeline::TableOutcome::kComplete);
        }
        const double wall = router.stats().wall_ms;
        router.Shutdown();
        if (rep == 0 || wall < best) best = wall;
      }
      if (replicas == 1) wall1 = best;
      if (replicas == 4) wall4 = best;
      const double tps = 1000.0 * static_cast<double>(tables.size()) / best;
      json.BeginObject();
      json.Field("replicas", static_cast<int64_t>(replicas));
      json.Field("wall_ms", best);
      json.Field("tables_per_s", tps);
      json.EndObject();
      std::printf("  replicas=%d  wall %8.1f ms  %7.1f tables/s\n", replicas,
                  best, tps);
    }
    json.EndArray();
    json.Field("scaling_1_to_4", wall1 / wall4);

    serve::ConsistentHashRing ring(4, 64);
    serve::WorkerEnv crash_env = env;
    crash_env.crash_table = tables[0];
    crash_env.crash_replica =
        ring.NodeFor(tables[0], [](int) { return true; });
    serve::RouterOptions ropt;
    ropt.supervisor.replicas = 4;
    serve::Router router(crash_env, ropt);
    TASTE_CHECK(router.Start().ok());
    pipeline::BatchResult batch = router.RunBatch(tables);
    for (const auto& t : batch.tables) {
      TASTE_CHECK(t.outcome == pipeline::TableOutcome::kComplete);
    }
    TASTE_CHECK(router.MaintainUntilAllUp(5000.0));
    const auto& rec = router.supervisor().recovery_times_ms();
    TASTE_CHECK(!rec.empty());
    const double recovery_ms = rec.front();
    router.Shutdown();
    json.Field("failover_recovery_ms", recovery_ms);

    // Gray-failure rows (DESIGN.md §13): SIGSTOP-wedge the ring owner of
    // the first table, twice, once per recovery mechanism.
    //
    // Hedge run: straggler hedging re-sends the wedged leg to the ring
    // successor and the batch completes without waiting for the wedge.
    // The gate is hedge duplicate work: a wedged replica can never answer,
    // so wasted (duplicate) responses per admitted table must stay < 10%.
    // Whether the derived watchdog also condemns the wedge before the
    // batch drains is timing-dependent, so this run asserts nothing about
    // recovery; Shutdown reaps the stopped worker either way.
    serve::WorkerEnv wedge_env = env;
    wedge_env.wedge_table = tables[0];
    wedge_env.wedge_replica =
        ring.NodeFor(tables[0], [](int) { return true; });
    serve::RouterOptions hopt;
    hopt.supervisor.replicas = 4;
    hopt.hedge_multiplier = 1.0;
    hopt.hedge_floor_ms = 40.0;
    hopt.hedge_budget_fraction = 1.0;
    double hedge_waste_fraction = 0.0;
    int64_t hedged_tables = 0, hedge_wasted_tables = 0;
    {
      serve::Router hrouter(wedge_env, hopt);
      TASTE_CHECK(hrouter.Start().ok());
      pipeline::BatchResult hbatch = hrouter.RunBatch(tables);
      for (const auto& t : hbatch.tables) {
        TASTE_CHECK(t.outcome == pipeline::TableOutcome::kComplete);
      }
      hedged_tables = hrouter.stats().hedged_tables;
      hedge_wasted_tables = hrouter.stats().hedge_wasted_tables;
      hedge_waste_fraction = static_cast<double>(hedge_wasted_tables) /
                             static_cast<double>(tables.size());
      hrouter.Shutdown();
    }

    // Watchdog run: hedging off, so the batch CANNOT complete until the
    // watchdog condemns the wedged replica (SIGTERM -> SIGKILL) and its
    // tables re-dispatch — which makes the respawn, and therefore the
    // recovery-time sample, deterministic. The gate bounds wedge->respawn
    // recovery by the same 5 s budget as kill->respawn.
    double wedge_recovery_ms = 0.0;
    {
      serve::RouterOptions wopt;
      wopt.supervisor.replicas = 4;
      wopt.hedge_multiplier = 0.0;
      // Generous vs this box's healthy leg wall (~300 ms for the whole
      // batch): only the wedge — which never completes — crosses it, so
      // the run condemns exactly the wedged replica.
      wopt.watchdog_ms = 800.0;
      serve::Router wrouter(wedge_env, wopt);
      TASTE_CHECK(wrouter.Start().ok());
      pipeline::BatchResult wbatch = wrouter.RunBatch(tables);
      for (const auto& t : wbatch.tables) {
        TASTE_CHECK(t.outcome == pipeline::TableOutcome::kComplete);
      }
      TASTE_CHECK(wrouter.supervisor().watchdog_kills() >= 1);
      TASTE_CHECK(wrouter.MaintainUntilAllUp(5000.0));
      const auto& wrec = wrouter.supervisor().recovery_times_ms();
      TASTE_CHECK(!wrec.empty());
      wedge_recovery_ms = wrec.back();
      wrouter.Shutdown();
    }
    json.Field("wedge_hedged_tables", hedged_tables);
    json.Field("wedge_hedge_wasted_tables", hedge_wasted_tables);
    json.Field("hedge_waste_fraction", hedge_waste_fraction);
    json.Field("wedge_recovery_ms", wedge_recovery_ms);

    // Cache-plane rows (DESIGN.md §14): the same 4-replica fleet with the
    // cross-replica cache plane armed. Batch 1 populates the plane, the
    // ring owner of the first table is SIGKILLed, and batch 2 re-runs on
    // the recovered fleet — once warm (peer warm-up pushes armed; remote
    // lookups should be unnecessary) and once cold (warmup_keys = 0, so
    // every local miss pays a remote lookup — whose hit rate is the
    // cross-replica reuse measurement). Recovery time is the supervisor's
    // kill-observed → respawned-and-serving sample, which for the warm
    // run includes the warm-up push itself.
    auto plane_run = [&](int warmup_keys, double* batch2_wall,
                         double* recovery_ms, double* plane_hit_rate,
                         int64_t* warmup_entries) {
      serve::WorkerEnv penv = env;
      penv.cache_plane = true;
      penv.cache_plane_timeout_ms = 2000;
      serve::RouterOptions plopt;
      plopt.supervisor.replicas = 4;
      plopt.warmup_keys = warmup_keys;
      serve::Router prouter(penv, plopt);
      TASTE_CHECK(prouter.Start().ok());
      pipeline::BatchResult b1 = prouter.RunBatch(tables);
      for (const auto& t : b1.tables) {
        TASTE_CHECK(t.outcome == pipeline::TableOutcome::kComplete);
      }
      const int victim = ring.NodeFor(tables[0], [](int) { return true; });
      const serve::Replica* vr = prouter.supervisor().replica(victim);
      TASTE_CHECK(vr != nullptr && vr->pid > 0);
      ::kill(vr->pid, SIGKILL);
      for (int spin = 0; spin < 400; ++spin) {
        if (!prouter.supervisor().ReapDead().empty()) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      TASTE_CHECK(prouter.MaintainUntilAllUp(5000.0));
      const auto& prec = prouter.supervisor().recovery_times_ms();
      TASTE_CHECK(!prec.empty());
      *recovery_ms = prec.back();
      const serve::CachePlane::Stats before = prouter.cache_plane().stats();
      pipeline::BatchResult b2 = prouter.RunBatch(tables);
      for (const auto& t : b2.tables) {
        TASTE_CHECK(t.outcome == pipeline::TableOutcome::kComplete);
      }
      *batch2_wall = prouter.stats().wall_ms;
      const serve::CachePlane::Stats after = prouter.cache_plane().stats();
      const int64_t lookups =
          (after.hits - before.hits) + (after.misses - before.misses);
      *plane_hit_rate =
          lookups > 0
              ? static_cast<double>(after.hits - before.hits) / lookups
              : 1.0;
      *warmup_entries = after.warmup_pushes;
      prouter.Shutdown();
    };
    double warm_wall = 0.0, warm_recovery = 0.0, warm_rate = 0.0;
    double cold_wall = 0.0, cold_recovery = 0.0, cold_rate = 0.0;
    int64_t warm_pushed = 0, cold_pushed = 0;
    plane_run(serve::RouterOptions().warmup_keys, &warm_wall, &warm_recovery,
              &warm_rate, &warm_pushed);
    plane_run(0, &cold_wall, &cold_recovery, &cold_rate, &cold_pushed);
    TASTE_CHECK(warm_pushed >= 1);
    TASTE_CHECK(cold_pushed == 0);
    json.Field("cache_plane_cold_hit_rate", cold_rate);
    json.Field("cache_plane_cold_batch2_wall_ms", cold_wall);
    json.Field("cache_plane_warm_batch2_wall_ms", warm_wall);
    json.Field("cache_plane_warm_recovery_ms", warm_recovery);
    json.Field("cache_plane_cold_recovery_ms", cold_recovery);
    json.Field("cache_plane_warmup_entries", warm_pushed);
    json.EndObject();
    std::printf("  scaling 1->4: %.2fx;  kill->respawn recovery %.1f ms\n",
                wall1 / wall4, recovery_ms);
    std::printf(
        "  wedge: hedged %lld, wasted %lld (%.1f%% of %zu tables); "
        "watchdog recovery %.1f ms\n",
        static_cast<long long>(hedged_tables),
        static_cast<long long>(hedge_wasted_tables),
        100.0 * hedge_waste_fraction, tables.size(), wedge_recovery_ms);
    std::printf(
        "  cache plane: cold remote hit rate %.2f (batch2 %.1f ms), warm "
        "batch2 %.1f ms, warm respawn %.1f ms incl. %lld pushed entries\n",
        cold_rate, cold_wall, warm_wall, warm_recovery,
        static_cast<long long>(warm_pushed));
  }

  // The unified-observability view of the same two runs: stage latency
  // histograms, cache and db counters, per-op kernel timings. This is the
  // machine-readable surface tools/bench_check.py sanity-checks.
  obs::AppendMetricsJson(obs::Registry::Global().snapshot(), &json);
  json.EndObject();

  const char* path = "BENCH_substrate.json";
  if (json.WriteFile(path)) {
    std::printf("end-to-end: %zu tables, sequential %.1f ms, pipelined %.1f ms\n",
                tables.size(), seq.stats().wall_ms, pip.stats().wall_ms);
    std::printf("wrote %s\n", path);
  } else {
    std::fprintf(stderr, "failed to write %s\n", path);
  }
}

}  // namespace
}  // namespace taste

int main(int argc, char** argv) {
  taste::WriteSubstrateJson();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
