// Google-benchmark microbenchmarks of the substrates: tensor kernels,
// tokenizer throughput, model forward passes (P1, P2 with/without cached
// latents), and database access primitives. Not a paper figure — these
// bound the cost model of the larger benches.

#include <benchmark/benchmark.h>

#include "clouddb/database.h"
#include "core/taste_detector.h"
#include "data/table_generator.h"
#include "model/adtd.h"
#include "tensor/ops.h"
#include "text/wordpiece.h"

namespace taste {
namespace {

// ---- tensor kernels ---------------------------------------------------------

void BM_MatMul(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn({n, n}, rng);
  tensor::Tensor b = tensor::Tensor::Randn({n, n}, rng);
  tensor::NoGradGuard ng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_Softmax(benchmark::State& state) {
  Rng rng(2);
  tensor::Tensor x = tensor::Tensor::Randn({state.range(0), 128}, rng);
  tensor::NoGradGuard ng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::Softmax(x));
  }
}
BENCHMARK(BM_Softmax)->Arg(64)->Arg(256);

void BM_LayerNorm(benchmark::State& state) {
  Rng rng(3);
  tensor::Tensor x = tensor::Tensor::Randn({state.range(0), 64}, rng);
  tensor::Tensor g = tensor::Tensor::Full({64}, 1.0f);
  tensor::Tensor b = tensor::Tensor::Zeros({64});
  tensor::NoGradGuard ng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::LayerNorm(x, g, b));
  }
}
BENCHMARK(BM_LayerNorm)->Arg(64)->Arg(256);

void BM_AutogradBackward(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    tensor::Tensor a = tensor::Tensor::Randn({32, 32}, rng, 1.0f, true);
    tensor::Tensor b = tensor::Tensor::Randn({32, 32}, rng, 1.0f, true);
    tensor::Tensor loss = tensor::MeanAll(tensor::Square(tensor::MatMul(a, b)));
    loss.Backward();
    benchmark::DoNotOptimize(a.grad().data());
  }
}
BENCHMARK(BM_AutogradBackward);

// ---- shared fixture for model-level benches ------------------------------------

struct Fixture {
  data::Dataset dataset;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer;
  std::unique_ptr<model::AdtdModel> model;
  std::unique_ptr<clouddb::SimulatedDatabase> db;

  static Fixture& Get() {
    static Fixture* f = [] {
      auto* fx = new Fixture();
      fx->dataset =
          data::GenerateDataset(data::DatasetProfile::WikiLike(40));
      text::WordPieceTrainer trainer({.vocab_size = 600});
      for (const auto& d : data::BuildCorpusDocuments(fx->dataset)) {
        trainer.AddDocument(d);
      }
      fx->tokenizer =
          std::make_unique<text::WordPieceTokenizer>(trainer.Train());
      model::AdtdConfig cfg = model::AdtdConfig::Tiny(
          fx->tokenizer->vocab().size(),
          data::SemanticTypeRegistry::Default().size());
      Rng rng(5);
      fx->model = std::make_unique<model::AdtdModel>(cfg, rng);
      clouddb::CostModel cost;
      cost.time_scale = 0.0;
      fx->db = std::make_unique<clouddb::SimulatedDatabase>(cost);
      TASTE_CHECK(fx->db->IngestDataset(fx->dataset).ok());
      return fx;
    }();
    return *f;
  }
};

void BM_TokenizerEncode(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  std::string text =
      "customer_email_address varchar(255) primary contact email "
      "james.smith@example.com 555-0199 2024-01-01";
  int64_t bytes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.tokenizer->Encode(text));
    bytes += static_cast<int64_t>(text.size());
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_TokenizerEncode);

void BM_MetadataTowerForward(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  auto conn = f.db->Connect();
  auto meta = conn->GetTableMetadata(f.dataset.tables[0].name);
  TASTE_CHECK(meta.ok());
  model::InputEncoder encoder(f.tokenizer.get(), f.model->config().input);
  model::EncodedMetadata em = encoder.EncodeMetadata(*meta);
  tensor::NoGradGuard ng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model->ForwardMetadata(em));
  }
}
BENCHMARK(BM_MetadataTowerForward);

void BM_ContentTowerForward_CachedLatents(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  auto conn = f.db->Connect();
  auto meta = conn->GetTableMetadata(f.dataset.tables[0].name);
  TASTE_CHECK(meta.ok());
  model::InputEncoder encoder(f.tokenizer.get(), f.model->config().input);
  model::EncodedMetadata em = encoder.EncodeMetadata(*meta);
  std::map<int, std::vector<std::string>> content;
  for (int c = 0; c < em.num_columns; ++c) {
    content[c] = f.dataset.tables[0].columns[c].values;
  }
  model::EncodedContent ec = encoder.EncodeContent(em, content);
  tensor::NoGradGuard ng;
  auto cached = f.model->ForwardMetadata(em);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model->ForwardContent(ec, em, cached));
  }
}
BENCHMARK(BM_ContentTowerForward_CachedLatents);

void BM_ContentTowerForward_RecomputedLatents(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  auto conn = f.db->Connect();
  auto meta = conn->GetTableMetadata(f.dataset.tables[0].name);
  TASTE_CHECK(meta.ok());
  model::InputEncoder encoder(f.tokenizer.get(), f.model->config().input);
  model::EncodedMetadata em = encoder.EncodeMetadata(*meta);
  std::map<int, std::vector<std::string>> content;
  for (int c = 0; c < em.num_columns; ++c) {
    content[c] = f.dataset.tables[0].columns[c].values;
  }
  model::EncodedContent ec = encoder.EncodeContent(em, content);
  tensor::NoGradGuard ng;
  for (auto _ : state) {
    // The "TASTE w/o caching" path: the metadata tower runs again.
    auto enc = f.model->ForwardMetadata(em);
    benchmark::DoNotOptimize(f.model->ForwardContent(ec, em, enc));
  }
}
BENCHMARK(BM_ContentTowerForward_RecomputedLatents);

void BM_MetadataFetch(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  auto conn = f.db->Connect();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        conn->GetTableMetadata(f.dataset.tables[i % 40].name));
    ++i;
  }
}
BENCHMARK(BM_MetadataFetch);

void BM_ColumnScan(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  auto conn = f.db->Connect();
  const auto& table = f.dataset.tables[0];
  std::vector<std::string> cols;
  for (const auto& c : table.columns) cols.push_back(c.name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        conn->ScanColumns(table.name, cols, {.limit_rows = 50}));
  }
}
BENCHMARK(BM_ColumnScan);

void BM_EndToEndDetectTable(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  core::TasteDetector det(f.model.get(), f.tokenizer.get(), {});
  auto conn = f.db->Connect();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        det.DetectTable(conn.get(), f.dataset.tables[i % 40].name));
    ++i;
  }
}
BENCHMARK(BM_EndToEndDetectTable);

}  // namespace
}  // namespace taste

BENCHMARK_MAIN();
