// Shared setup for the figure/table reproduction benches.
//
// Every bench uses the same StackOptions so trained checkpoints are shared
// through the on-disk cache (.taste_model_cache in the working directory):
// the first bench to run trains the models, the rest load them.

#ifndef TASTE_BENCH_BENCH_COMMON_H_
#define TASTE_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/rule_based.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "baselines/single_tower.h"
#include "core/taste_detector.h"
#include "data/table_generator.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "obs/json_writer.h"
#include "pipeline/scheduler.h"

namespace taste::bench {

/// The standard stack configuration all reproduction benches share.
inline eval::StackOptions StandardStackOptions() {
  eval::StackOptions o;
  o.num_tables = 240;
  o.vocab_size = 700;
  o.pretrain_epochs = 1;
  o.finetune_epochs = 12;
  o.train_adtd_hist = true;
  o.train_baselines = true;
  o.cache_dir = ".taste_model_cache";
  o.seed = 1234;
  return o;
}

/// Per-dataset training budget. The GitLike profile's value proposition is
/// high-confidence metadata-only decisions (paper: 1.7% scanned), which
/// needs a better-calibrated P1 than WikiLike's — the paper itself trains
/// the two datasets for different wall-clock budgets (97 vs 66 min).
inline eval::StackOptions StackOptionsFor(const data::DatasetProfile& p) {
  eval::StackOptions o = StandardStackOptions();
  if (p.name == "GitLike") o.finetune_epochs = 28;
  return o;
}

/// Latency realization factor for wall-clock experiments: simulated
/// milliseconds are slept at this scale, so measured times are comparable
/// across detectors while keeping total bench runtime modest.
inline constexpr double kTimeScale = 0.2;

/// Cost model used by wall-clock experiments (real blocking).
inline clouddb::CostModel TimedCost() {
  clouddb::CostModel c;
  c.time_scale = kTimeScale;
  return c;
}

/// Cost model used by accuracy-only experiments (no blocking).
inline clouddb::CostModel InstantCost() {
  clouddb::CostModel c;
  c.time_scale = 0.0;
  return c;
}

inline std::string Pct(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * x);
  return buf;
}

inline std::string F4(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", x);
  return buf;
}

inline std::string Ms(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f ms", x);
  return buf;
}

/// Builds (or loads from cache) the full stack for one profile, exiting the
/// process on failure — benches have no meaningful recovery path.
inline eval::TrainedStack MustBuildStack(const data::DatasetProfile& profile) {
  auto stack = eval::BuildStack(profile, StackOptionsFor(profile));
  if (!stack.ok()) {
    std::fprintf(stderr, "stack build failed: %s\n",
                 stack.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*stack);
}

/// Names of the test tables of a dataset.
inline std::vector<std::string> TestTableNames(const data::Dataset& ds) {
  std::vector<std::string> names;
  for (int idx : ds.test) names.push_back(ds.tables[idx].name);
  return names;
}

/// The streaming JSON emitter the BENCH_*.json artifacts use now lives in
/// src/obs/ (the serving path emits metrics documents with it); this alias
/// keeps the historical bench-side name working.
using JsonWriter = obs::JsonWriter;

}  // namespace taste::bench

#endif  // TASTE_BENCH_BENCH_COMMON_H_
