// Reproduces Fig. 8: the impact of the column-split threshold l (8a) and
// of the number of input cell values n (8b) on execution time and F1
// (WikiLike dataset; model trained at l=20, n=10 and evaluated with
// serving-time overrides, mirroring the paper's deployment knobs).
//
// Paper shapes:
//   (a) growing l 4 -> 20: execution time falls (fewer chunks to infer),
//       F1 rises (more columns share cross-column attention);
//   (b) growing n 1 -> 20: execution time rises (more content to fetch and
//       encode), F1 rises (more evidence per column).
//
// To make chunking bite at small l, this bench uses a wide-table dataset
// variant (up to 16 columns per table).

#include "bench_common.h"

namespace taste::bench {
namespace {

void Run() {
  data::DatasetProfile profile = data::DatasetProfile::WikiLike();
  profile.name = "WikiLikeWide";
  profile.min_columns = 6;
  profile.max_columns = 16;
  eval::StackOptions options = StandardStackOptions();
  options.train_adtd_hist = false;
  options.train_baselines = false;
  // Wide tables are ~2.5x slower to train on; trim the budget.
  options.num_tables = 150;
  options.finetune_epochs = 8;
  auto stack_res = eval::BuildStack(profile, options);
  TASTE_CHECK_MSG(stack_res.ok(), stack_res.status().ToString());
  eval::TrainedStack& stack = *stack_res;
  auto db = eval::MakeTestDatabase(stack.dataset, stack.dataset.test, false,
                                   TimedCost());
  TASTE_CHECK(db.ok());
  std::vector<std::string> tables = TestTableNames(stack.dataset);

  auto measure = [&](int l, int n) {
    db->get()->ledger().Reset();
    core::TasteOptions topt;
    topt.override_split_threshold = l;
    topt.override_cells_per_column = n;
    core::TasteDetector det(stack.adtd.get(), stack.tokenizer.get(), topt);
    pipeline::PipelineExecutor exec(&det, db->get(),
                                    {.prep_threads = 2, .infer_threads = 2});
    auto results = exec.Run(tables);
    TASTE_CHECK_MSG(results.ok(), results.status().ToString());
    return eval::SummarizeResults(*results, stack.dataset, stack.dataset.test,
                                  db->get()->ledger().snapshot(),
                                  exec.stats().wall_ms);
  };

  std::printf("%s",
              eval::SectionHeader("Fig. 8(a) — column split threshold l "
                                  "(WikiLikeWide, n=10)")
                  .c_str());
  {
    eval::TextTable table({"l", "exec time", "F1", "scanned ratio"});
    for (int l : {4, 8, 12, 16, 20}) {
      eval::EvalRunResult r = measure(l, 10);
      table.AddRow({std::to_string(l), Ms(r.wall_ms), F4(r.scores.f1),
                    Pct(r.scanned_ratio())});
    }
    std::printf("%s", table.ToString().c_str());
    std::printf(
        "Paper shape: larger l -> lower execution time, higher F1.\n"
        "Substrate note: the paper's per-chunk fixed cost (150-token table\n"
        "segment re-encoded per chunk + GPU kernel launches) dominates its\n"
        "l-trend; on this CPU substrate the quadratic attention term\n"
        "dominates instead, so small l can be cheaper. The F1 trend (larger\n"
        "l -> more cross-column attention -> higher F1) is substrate-free.\n");
  }

  std::printf("%s", eval::SectionHeader("Fig. 8(b) — input cell values n "
                                        "(WikiLikeWide, l=20)")
                        .c_str());
  {
    eval::TextTable table({"n", "exec time", "F1", "scanned ratio"});
    for (int n : {1, 3, 5, 10, 15, 20}) {
      eval::EvalRunResult r = measure(20, n);
      table.AddRow({std::to_string(n), Ms(r.wall_ms), F4(r.scores.f1),
                    Pct(r.scanned_ratio())});
    }
    std::printf("%s", table.ToString().c_str());
    std::printf(
        "Paper shape: larger n -> higher execution time and higher F1.\n");
  }
}

}  // namespace
}  // namespace taste::bench

int main() {
  taste::SetLogLevel(taste::LogLevel::kWarn);
  taste::bench::Run();
  return 0;
}
