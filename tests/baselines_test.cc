// Tests for the baseline detectors: single-tower encoding and attention
// scoping, always-scan behaviour, privacy mode, and the regex/dictionary
// rule-based detectors.

#include <gtest/gtest.h>

#include "baselines/rule_based.h"
#include "baselines/single_tower.h"
#include "data/table_generator.h"

namespace taste::baselines {
namespace {

struct Env {
  data::Dataset dataset;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer;
  std::unique_ptr<clouddb::SimulatedDatabase> db;

  static Env Make(int tables = 10,
                  data::DatasetProfile profile = data::DatasetProfile::WikiLike()) {
    Env e;
    profile.num_tables = tables;
    e.dataset = data::GenerateDataset(profile);
    text::WordPieceTrainer trainer({.vocab_size = 500});
    for (const auto& d : data::BuildCorpusDocuments(e.dataset)) {
      trainer.AddDocument(d);
    }
    e.tokenizer = std::make_unique<text::WordPieceTokenizer>(trainer.Train());
    clouddb::CostModel cost;
    cost.time_scale = 0.0;
    e.db = std::make_unique<clouddb::SimulatedDatabase>(cost);
    TASTE_CHECK(e.db->IngestDataset(e.dataset).ok());
    return e;
  }
};

TEST(SingleTowerConfigTest, DoduoIsLargerThanTurl) {
  auto turl = SingleTowerConfig::TurlLike(500, 40);
  auto doduo = SingleTowerConfig::DoduoLike(500, 40);
  Rng r1(1), r2(2);
  SingleTowerModel mt(turl, r1), md(doduo, r2);
  EXPECT_GT(md.ParameterCount(), 2 * mt.ParameterCount());
}

TEST(SingleTowerEncoderTest, CombinedSequenceLayout) {
  Env e = Env::Make();
  auto cfg = SingleTowerConfig::TurlLike(e.tokenizer->vocab().size(),
                                         data::SemanticTypeRegistry::Default().size());
  SingleTowerEncoder enc(e.tokenizer.get(), cfg);
  auto conn = e.db->Connect();
  auto meta = conn->GetTableMetadata(e.dataset.tables[0].name);
  ASSERT_TRUE(meta.ok());
  std::map<int, std::vector<std::string>> content;
  content[0] = {"hello", "world"};
  SingleTowerEncoding encd = enc.Encode(*meta, content);
  int ncols = static_cast<int>(meta->columns.size());
  EXPECT_EQ(encd.num_columns, ncols);
  int per_col = 1 + cfg.input.col_meta_tokens +
                cfg.input.cells_per_column * cfg.input.cell_tokens;
  EXPECT_EQ(static_cast<int>(encd.token_ids.size()),
            cfg.input.table_tokens + ncols * per_col);
  for (int a : encd.column_anchors) {
    EXPECT_EQ(encd.token_ids[static_cast<size_t>(a)], text::Vocab::kClsId);
  }
}

TEST(SingleTowerEncoderTest, EmptyContentLeavesPads) {
  Env e = Env::Make();
  auto cfg = SingleTowerConfig::TurlLike(e.tokenizer->vocab().size(), 40);
  SingleTowerEncoder enc(e.tokenizer.get(), cfg);
  auto conn = e.db->Connect();
  auto meta = conn->GetTableMetadata(e.dataset.tables[0].name);
  ASSERT_TRUE(meta.ok());
  SingleTowerEncoding encd = enc.Encode(*meta, {});
  // Content slots (after each column's metadata) must all be PAD.
  int per_col = 1 + cfg.input.col_meta_tokens +
                cfg.input.cells_per_column * cfg.input.cell_tokens;
  for (size_t c = 0; c < static_cast<size_t>(encd.num_columns); ++c) {
    int base = cfg.input.table_tokens + static_cast<int>(c) * per_col + 1 +
               cfg.input.col_meta_tokens;
    for (int k = 0; k < cfg.input.cells_per_column * cfg.input.cell_tokens;
         ++k) {
      EXPECT_EQ(encd.token_ids[static_cast<size_t>(base + k)],
                text::Vocab::kPadId);
    }
  }
}

TEST(SingleTowerModelTest, ColumnScopedMaskIsolatesColumns) {
  // TURL-like attention: column 0's logits are invariant to column 1's
  // cell values.
  Env e = Env::Make();
  auto cfg = SingleTowerConfig::TurlLike(e.tokenizer->vocab().size(), 40);
  Rng rng(3);
  SingleTowerModel model(cfg, rng);
  SingleTowerEncoder enc(e.tokenizer.get(), cfg);
  auto conn = e.db->Connect();
  const data::TableSpec* two_col = nullptr;
  for (const auto& t : e.dataset.tables) {
    if (t.columns.size() >= 2) {
      two_col = &t;
      break;
    }
  }
  ASSERT_NE(two_col, nullptr);
  auto meta = conn->GetTableMetadata(two_col->name);
  ASSERT_TRUE(meta.ok());
  std::map<int, std::vector<std::string>> c1{{0, {"aaa"}}, {1, {"bbb"}}};
  std::map<int, std::vector<std::string>> c2{{0, {"aaa"}}, {1, {"zzz yyy"}}};
  tensor::NoGradGuard ng;
  tensor::Tensor l1 = model.Forward(enc.Encode(*meta, c1));
  tensor::Tensor l2 = model.Forward(enc.Encode(*meta, c2));
  for (int j = 0; j < 40; ++j) {
    EXPECT_NEAR(l1.data()[j], l2.data()[j], 1e-4f);
  }
}

TEST(SingleTowerModelTest, GlobalMaskMixesColumns) {
  // Doduo-like attention: column 0's logits DO change with column 1.
  Env e = Env::Make();
  auto cfg = SingleTowerConfig::DoduoLike(e.tokenizer->vocab().size(), 40);
  Rng rng(4);
  SingleTowerModel model(cfg, rng);
  SingleTowerEncoder enc(e.tokenizer.get(), cfg);
  auto conn = e.db->Connect();
  const data::TableSpec* two_col = nullptr;
  for (const auto& t : e.dataset.tables) {
    if (t.columns.size() >= 2) {
      two_col = &t;
      break;
    }
  }
  ASSERT_NE(two_col, nullptr);
  auto meta = conn->GetTableMetadata(two_col->name);
  ASSERT_TRUE(meta.ok());
  std::map<int, std::vector<std::string>> c1{{0, {"aaa"}}, {1, {"bbb"}}};
  std::map<int, std::vector<std::string>> c2{{0, {"aaa"}}, {1, {"zzz yyy"}}};
  tensor::NoGradGuard ng;
  tensor::Tensor l1 = model.Forward(enc.Encode(*meta, c1));
  tensor::Tensor l2 = model.Forward(enc.Encode(*meta, c2));
  float diff = 0;
  for (int j = 0; j < 40; ++j) diff += std::abs(l1.data()[j] - l2.data()[j]);
  EXPECT_GT(diff, 1e-4f);
}

TEST(SingleTowerDetectorTest, AlwaysScansEveryColumn) {
  Env e = Env::Make();
  auto cfg = SingleTowerConfig::TurlLike(
      e.tokenizer->vocab().size(),
      data::SemanticTypeRegistry::Default().size());
  Rng rng(5);
  SingleTowerModel model(cfg, rng);
  SingleTowerDetector det(&model, e.tokenizer.get(), {});
  auto conn = e.db->Connect();
  int64_t total_cols = 0;
  for (int i = 0; i < 5; ++i) {
    auto res = det.DetectTable(conn.get(), e.dataset.tables[i].name);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res->columns_scanned, res->total_columns);
    total_cols += res->total_columns;
  }
  EXPECT_EQ(e.db->ledger().snapshot().scanned_columns, total_cols);
}

TEST(SingleTowerDetectorTest, PrivacyModeScansNothing) {
  Env e = Env::Make();
  auto cfg = SingleTowerConfig::TurlLike(e.tokenizer->vocab().size(),
                                         data::SemanticTypeRegistry::Default().size());
  Rng rng(6);
  SingleTowerModel model(cfg, rng);
  SingleTowerDetector det(&model, e.tokenizer.get(),
                          {.include_content = false});
  auto conn = e.db->Connect();
  auto res = det.DetectTable(conn.get(), e.dataset.tables[0].name);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->columns_scanned, 0);
  EXPECT_EQ(e.db->ledger().snapshot().scanned_columns, 0);
}

TEST(SingleTowerTrainerTest, LossDecreases) {
  Env e = Env::Make(12);
  auto cfg = SingleTowerConfig::TurlLike(e.tokenizer->vocab().size(),
                                         data::SemanticTypeRegistry::Default().size());
  Rng rng(7);
  SingleTowerModel model(cfg, rng);
  std::vector<int> idx;
  for (int i = 0; i < static_cast<int>(e.dataset.tables.size()); ++i) {
    idx.push_back(i);
  }
  model::FineTuneOptions opt;
  opt.epochs = 1;
  auto first = TrainSingleTower(&model, e.tokenizer.get(), e.dataset, idx, opt);
  ASSERT_TRUE(first.ok());
  opt.epochs = 4;
  auto later = TrainSingleTower(&model, e.tokenizer.get(), e.dataset, idx, opt);
  ASSERT_TRUE(later.ok());
  EXPECT_LT(*later, *first);
}

TEST(RegexDetectorTest, DetectsPatternedTypes) {
  Env e = Env::Make(20);
  RegexDetector det(&data::SemanticTypeRegistry::Default());
  auto conn = e.db->Connect();
  const auto& registry = data::SemanticTypeRegistry::Default();
  int email_id = *registry.IdByName("email");
  bool found_email_column = false;
  for (int i = 0; i < static_cast<int>(e.dataset.tables.size()); ++i) {
    const auto& table = e.dataset.tables[i];
    auto res = det.DetectTable(conn.get(), table.name);
    ASSERT_TRUE(res.ok());
    for (size_t c = 0; c < table.columns.size(); ++c) {
      bool truth_email =
          std::find(table.columns[c].labels.begin(),
                    table.columns[c].labels.end(),
                    email_id) != table.columns[c].labels.end();
      if (truth_email) {
        found_email_column = true;
        const auto& admitted = res->columns[c].admitted_types;
        EXPECT_NE(std::find(admitted.begin(), admitted.end(), email_id),
                  admitted.end())
            << table.name << "." << table.columns[c].name;
      }
    }
  }
  EXPECT_TRUE(found_email_column);
}

TEST(RegexDetectorTest, CoversOnlyPatternFriendlyTypes) {
  RegexDetector det(&data::SemanticTypeRegistry::Default());
  auto covered = det.covered_types();
  const auto& registry = data::SemanticTypeRegistry::Default();
  // city / description have no rigid syntax: no regex.
  int city = *registry.IdByName("city");
  EXPECT_EQ(std::find(covered.begin(), covered.end(), city), covered.end());
  EXPECT_LT(static_cast<int>(covered.size()), registry.size() - 1);
  EXPECT_GE(covered.size(), 15u);
}

TEST(DictionaryDetectorTest, LearnsClosedVocabularies) {
  Env e = Env::Make(40);
  const auto& registry = data::SemanticTypeRegistry::Default();
  DictionaryDetector det(&registry);
  det.Fit(e.dataset, e.dataset.train);
  EXPECT_GT(det.dictionary_size(), 100u);
  auto conn = e.db->Connect();
  // Closed-vocabulary types (country, color, status) should be recognized
  // in the test split.
  int hits = 0, truth_count = 0;
  int country = *registry.IdByName("country");
  for (int idx : e.dataset.test) {
    const auto& table = e.dataset.tables[idx];
    auto res = det.DetectTable(conn.get(), table.name);
    ASSERT_TRUE(res.ok());
    for (size_t c = 0; c < table.columns.size(); ++c) {
      bool truth = std::find(table.columns[c].labels.begin(),
                             table.columns[c].labels.end(),
                             country) != table.columns[c].labels.end();
      if (!truth) continue;
      ++truth_count;
      const auto& admitted = res->columns[c].admitted_types;
      if (std::find(admitted.begin(), admitted.end(), country) !=
          admitted.end()) {
        ++hits;
      }
    }
  }
  if (truth_count > 0) {
    EXPECT_GT(static_cast<double>(hits) / truth_count, 0.5);
  }
}

TEST(DictionaryDetectorTest, UnfittedDetectorAdmitsNothing) {
  Env e = Env::Make(5);
  DictionaryDetector det(&data::SemanticTypeRegistry::Default());
  auto conn = e.db->Connect();
  auto res = det.DetectTable(conn.get(), e.dataset.tables[0].name);
  ASSERT_TRUE(res.ok());
  for (const auto& col : res->columns) {
    EXPECT_TRUE(col.admitted_types.empty());
  }
}

}  // namespace
}  // namespace taste::baselines
