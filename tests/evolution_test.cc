// Tests for the paper's future-work features implemented here (Sec. 8):
// domain-set evolution (TypeRemap + ExtendAdtdModel + classifier-only
// fine-tuning) and user-feedback adaptation (FeedbackStore).

#include <gtest/gtest.h>

#include "core/feedback.h"
#include "data/table_generator.h"
#include "model/extension.h"
#include "model/trainer.h"
#include "tensor/ops.h"

namespace taste {
namespace {

const data::SemanticTypeRegistry& Reg() {
  return data::SemanticTypeRegistry::Default();
}

// ---- TypeRemap ---------------------------------------------------------------

TEST(TypeRemapTest, RoundTripAndNullAlwaysMapped) {
  auto retained = data::SelectRetainedTypes(Reg(), 10, 1);
  data::TypeRemap remap = data::TypeRemap::ForRetained(retained, Reg());
  EXPECT_EQ(remap.num_local_types(), 11);  // retained + type:null
  EXPECT_TRUE(remap.Covers(Reg().null_type_id()));
  for (int g : retained) {
    ASSERT_TRUE(remap.Covers(g));
    EXPECT_EQ(remap.ToGlobal(remap.ToLocal(g)), g);
  }
}

TEST(TypeRemapTest, UnmappedGlobalsReturnMinusOne) {
  auto retained = data::SelectRetainedTypes(Reg(), 5, 2);
  data::TypeRemap remap = data::TypeRemap::ForRetained(retained, Reg());
  int unmapped = 0;
  for (int g = 0; g < Reg().size(); ++g) {
    if (remap.ToLocal(g) < 0) ++unmapped;
  }
  EXPECT_EQ(unmapped, Reg().size() - 6);
}

TEST(TypeRemapTest, ExtendPreservesExistingIds) {
  auto retained = data::SelectRetainedTypes(Reg(), 8, 3);
  data::TypeRemap remap = data::TypeRemap::ForRetained(retained, Reg());
  std::vector<std::pair<int, int>> before;
  for (int g : retained) before.emplace_back(g, remap.ToLocal(g));
  // Find two unmapped globals and extend.
  std::vector<int> fresh;
  for (int g = 0; g < Reg().size() && fresh.size() < 2; ++g) {
    if (!remap.Covers(g)) fresh.push_back(g);
  }
  ASSERT_EQ(fresh.size(), 2u);
  int old_count = remap.num_local_types();
  remap.Extend(fresh);
  EXPECT_EQ(remap.num_local_types(), old_count + 2);
  for (auto [g, local] : before) EXPECT_EQ(remap.ToLocal(g), local);
  EXPECT_EQ(remap.ToLocal(fresh[0]), old_count);
  EXPECT_EQ(remap.ToLocal(fresh[1]), old_count + 1);
}

TEST(TypeRemapTest, RemapLabelsSendsUncoveredToNull) {
  data::Dataset ds = data::GenerateDataset(data::DatasetProfile::WikiLike(10));
  auto retained = data::SelectRetainedTypes(Reg(), 6, 4);
  data::TypeRemap remap = data::TypeRemap::ForRetained(retained, Reg());
  data::Dataset local = data::RemapLabels(ds, remap, Reg());
  int local_null = remap.ToLocal(Reg().null_type_id());
  for (const auto& t : local.tables) {
    for (const auto& c : t.columns) {
      ASSERT_FALSE(c.labels.empty());
      for (int l : c.labels) {
        EXPECT_GE(l, 0);
        EXPECT_LT(l, remap.num_local_types());
      }
      if (c.labels.size() == 1 && c.labels[0] == local_null) continue;
      // Non-null labels must correspond to retained globals.
      for (int l : c.labels) {
        EXPECT_NE(l, local_null);
        EXPECT_TRUE(remap.Covers(remap.ToGlobal(l)));
      }
    }
  }
}

// ---- model extension -----------------------------------------------------------

struct Env {
  data::Dataset dataset;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer;

  static Env Make(int tables = 30) {
    Env e;
    e.dataset = data::GenerateDataset(data::DatasetProfile::WikiLike(tables));
    text::WordPieceTrainer trainer({.vocab_size = 500});
    for (const auto& d : data::BuildCorpusDocuments(e.dataset)) {
      trainer.AddDocument(d);
    }
    e.tokenizer = std::make_unique<text::WordPieceTokenizer>(trainer.Train());
    return e;
  }
};

TEST(ExtendModelTest, GrowsTypeSpaceAndPreservesOldLogits) {
  Env e = Env::Make(8);
  model::AdtdConfig cfg =
      model::AdtdConfig::Tiny(e.tokenizer->vocab().size(), 12);
  Rng rng(5);
  model::AdtdModel old_model(cfg, rng);
  Rng rng2(6);
  auto grown = model::ExtendAdtdModel(old_model, 15, rng2);
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ((*grown)->config().num_types, 15);

  // Same input through both models: the first 12 logits must be identical.
  clouddb::CostModel cost;
  cost.time_scale = 0.0;
  clouddb::SimulatedDatabase db(cost);
  ASSERT_TRUE(db.CreateTable(e.dataset.tables[0]).ok());
  auto meta = db.Connect()->GetTableMetadata(e.dataset.tables[0].name);
  ASSERT_TRUE(meta.ok());
  model::InputEncoder encoder(e.tokenizer.get(), cfg.input);
  model::EncodedMetadata em = encoder.EncodeMetadata(*meta);
  tensor::NoGradGuard ng;
  auto out_old = old_model.ForwardMetadata(em);
  auto out_new = (*grown)->ForwardMetadata(em);
  for (int c = 0; c < em.num_columns; ++c) {
    for (int t = 0; t < 12; ++t) {
      EXPECT_FLOAT_EQ(out_old.logits.data()[c * 12 + t],
                      out_new.logits.data()[c * 15 + t])
          << "col " << c << " type " << t;
    }
  }
}

TEST(ExtendModelTest, RejectsShrinking) {
  Env e = Env::Make(6);
  model::AdtdConfig cfg =
      model::AdtdConfig::Tiny(e.tokenizer->vocab().size(), 12);
  Rng rng(7);
  model::AdtdModel m(cfg, rng);
  Rng rng2(8);
  EXPECT_FALSE(model::ExtendAdtdModel(m, 12, rng2).ok());
  EXPECT_FALSE(model::ExtendAdtdModel(m, 5, rng2).ok());
}

TEST(ExtendModelTest, ClassifierOnlyFineTuneLearnsNewTypesAndFreezesEncoder) {
  // Train on a reduced domain, extend to the full domain, fine-tune only
  // the classifiers on newly labeled data: the encoder must not move.
  Env e = Env::Make(24);
  auto retained = data::SelectRetainedTypes(Reg(), 20, 9);
  data::TypeRemap remap = data::TypeRemap::ForRetained(retained, Reg());
  data::Dataset local = data::RemapLabels(e.dataset, remap, Reg());

  model::AdtdConfig cfg = model::AdtdConfig::Tiny(
      e.tokenizer->vocab().size(), remap.num_local_types());
  Rng rng(10);
  model::AdtdModel base(cfg, rng);
  model::FineTuner base_tuner(&base, e.tokenizer.get());
  std::vector<int> all_tables;
  for (int i = 0; i < static_cast<int>(local.tables.size()); ++i) {
    all_tables.push_back(i);
  }
  model::FineTuneOptions ft;
  ft.epochs = 2;
  ASSERT_TRUE(base_tuner.Train(local, all_tables, ft).ok());

  // Domain grows: every remaining type arrives.
  std::vector<int> fresh;
  for (int g = 0; g < Reg().size(); ++g) {
    if (!remap.Covers(g)) fresh.push_back(g);
  }
  remap.Extend(fresh);
  Rng rng2(11);
  auto grown = model::ExtendAdtdModel(base, remap.num_local_types(), rng2);
  ASSERT_TRUE(grown.ok());

  // Snapshot an encoder parameter before adaptation.
  std::vector<float> encoder_before;
  for (const auto& [name, p] : (*grown)->NamedParameters()) {
    if (name.rfind("encoder.layer0.attn.q.weight", 0) == 0) {
      encoder_before.assign(p.data(), p.data() + p.numel());
    }
  }
  ASSERT_FALSE(encoder_before.empty());

  data::Dataset full_local = data::RemapLabels(e.dataset, remap, Reg());
  model::FineTuner tuner(grown->get(), e.tokenizer.get());
  model::FineTuneOptions adapt;
  adapt.epochs = 2;
  adapt.classifier_only = true;
  auto loss = tuner.Train(full_local, all_tables, adapt);
  ASSERT_TRUE(loss.ok());

  for (const auto& [name, p] : (*grown)->NamedParameters()) {
    if (name.rfind("encoder.layer0.attn.q.weight", 0) == 0) {
      for (int64_t i = 0; i < p.numel(); ++i) {
        ASSERT_EQ(p.data()[i], encoder_before[static_cast<size_t>(i)])
            << "encoder moved during classifier-only fine-tune";
      }
    }
  }
}

// ---- feedback --------------------------------------------------------------------

TEST(FeedbackStoreTest, AddAndSize) {
  core::FeedbackStore store;
  EXPECT_EQ(store.size(), 0u);
  store.Add({"orders", "num", 3, true});
  store.Add({"orders", "num", 4, false});
  EXPECT_EQ(store.size(), 2u);
  // Re-adding the same fact does not duplicate.
  store.Add({"orders", "num", 3, true});
  EXPECT_EQ(store.size(), 2u);
}

TEST(FeedbackStoreTest, LaterFeedbackSupersedes) {
  core::FeedbackStore store;
  store.Add({"t", "c", 7, true});
  store.Add({"t", "c", 7, false});  // tenant changed their mind
  core::TableDetectionResult result;
  result.table_name = "t";
  core::ColumnPrediction pred;
  pred.column_name = "c";
  pred.admitted_types = {7};
  result.columns.push_back(pred);
  EXPECT_EQ(store.ApplyOverrides(&result), 1);
  EXPECT_TRUE(result.columns[0].admitted_types.empty());
}

TEST(FeedbackStoreTest, OverridesAddAndRemove) {
  core::FeedbackStore store;
  store.Add({"t", "c", 1, true});   // confirm type 1
  store.Add({"t", "c", 2, false});  // reject type 2
  core::TableDetectionResult result;
  result.table_name = "t";
  core::ColumnPrediction pred;
  pred.column_name = "c";
  pred.admitted_types = {2, 3};
  result.columns.push_back(pred);
  store.ApplyOverrides(&result);
  EXPECT_EQ(result.columns[0].admitted_types, (std::vector<int>{1, 3}));
}

TEST(FeedbackStoreTest, UntouchedColumnsUnchanged) {
  core::FeedbackStore store;
  store.Add({"t", "other", 1, true});
  core::TableDetectionResult result;
  result.table_name = "t";
  core::ColumnPrediction pred;
  pred.column_name = "c";
  pred.admitted_types = {5};
  result.columns.push_back(pred);
  EXPECT_EQ(store.ApplyOverrides(&result), 0);
  EXPECT_EQ(result.columns[0].admitted_types, (std::vector<int>{5}));
}

TEST(FeedbackStoreTest, WrongTableIgnored) {
  core::FeedbackStore store;
  store.Add({"other_table", "c", 1, true});
  core::TableDetectionResult result;
  result.table_name = "t";
  core::ColumnPrediction pred;
  pred.column_name = "c";
  result.columns.push_back(pred);
  EXPECT_EQ(store.ApplyOverrides(&result), 0);
}

TEST(FeedbackDatasetTest, IncludesOnlyTablesWithFeedbackAndPatchesLabels) {
  data::Dataset ds = data::GenerateDataset(data::DatasetProfile::WikiLike(8));
  const auto& table = ds.tables[2];
  const auto& column = table.columns[0];
  int original = column.labels[0];
  int other = (original + 1) % (Reg().size() - 1);
  core::FeedbackStore store;
  store.Add({table.name, column.name, original, false});  // reject truth
  store.Add({table.name, column.name, other, true});      // confirm another
  data::Dataset fb = core::BuildFeedbackDataset(ds, store, Reg());
  ASSERT_EQ(fb.tables.size(), 1u);
  EXPECT_EQ(fb.tables[0].name, table.name);
  EXPECT_EQ(fb.train.size(), 1u);
  const auto& labels = fb.tables[0].columns[0].labels;
  EXPECT_EQ(std::count(labels.begin(), labels.end(), original), 0);
  EXPECT_EQ(std::count(labels.begin(), labels.end(), other), 1);
}

TEST(FeedbackDatasetTest, AllTypesRejectedBecomesNull) {
  data::Dataset ds = data::GenerateDataset(data::DatasetProfile::WikiLike(5));
  const auto& table = ds.tables[0];
  const auto& column = table.columns[0];
  core::FeedbackStore store;
  for (int l : column.labels) store.Add({table.name, column.name, l, false});
  data::Dataset fb = core::BuildFeedbackDataset(ds, store, Reg());
  ASSERT_EQ(fb.tables.size(), 1u);
  EXPECT_EQ(fb.tables[0].columns[0].labels,
            (std::vector<int>{Reg().null_type_id()}));
}

TEST(FeedbackIntegrationTest, ClassifierOnlyFineTuneFromFeedback) {
  // Feedback dataset + classifier-only fine-tune run end to end.
  Env e = Env::Make(16);
  model::AdtdConfig cfg =
      model::AdtdConfig::Tiny(e.tokenizer->vocab().size(), Reg().size());
  Rng rng(21);
  model::AdtdModel m(cfg, rng);
  core::FeedbackStore store;
  const auto& table = e.dataset.tables[0];
  store.Add({table.name, table.columns[0].name, 0, true});
  data::Dataset fb = core::BuildFeedbackDataset(e.dataset, store, Reg());
  ASSERT_FALSE(fb.tables.empty());
  model::FineTuner tuner(&m, e.tokenizer.get());
  model::FineTuneOptions opt;
  opt.epochs = 1;
  opt.classifier_only = true;
  EXPECT_TRUE(tuner.Train(fb, fb.train, opt).ok());
}

}  // namespace
}  // namespace taste
