// Parity suite for the raw kernel layer (tensor/kernels.h).
//
// Determinism split (see kernels.h): the blocked GEMM — serial or
// row-partitioned across a ThreadPool — is BITWISE identical to its own
// serial self for ALL transpose variants at any thread count (the
// pipeline's byte-identical-output guarantee rests on this), and matches
// the naive reference to 1e-5 relative (the reference rounds differently:
// accumulator seeding and per-loop-shape FMA contraction).

#include "tensor/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace taste::tensor::kernels {
namespace {

std::vector<float> RandomVec(int64_t n, Rng& rng) {
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.NextGaussian());
  return v;
}

struct GemmShape {
  int64_t m, n, k;
};

// Covers the register tile (4x16), its remainders, cache-block boundaries
// (KC=256, MC=64, NC=512 in kernels.cc), and degenerate dims.
const GemmShape kShapes[] = {
    {1, 1, 1},    {1, 16, 7},   {4, 16, 3},   {5, 17, 9},  {3, 1, 64},
    {1, 33, 1},   {7, 7, 7},    {64, 16, 48}, {13, 40, 21}, {65, 513, 12},
    {31, 130, 300},
};

void CheckAllVariants(const GemmShape& s, ThreadPool* pool) {
  Rng rng(s.m * 1000003 + s.n * 1009 + s.k);
  // Operand storage covers both layouts; transposed variants reinterpret.
  std::vector<float> a = RandomVec(s.m * s.k, rng);
  std::vector<float> b = RandomVec(s.k * s.n, rng);
  std::vector<float> c0 = RandomVec(s.m * s.n, rng);  // nonzero seed: C +=
  for (bool trans_a : {false, true}) {
    for (bool trans_b : {false, true}) {
      std::vector<float> want = c0;
      GemmAccRef(a.data(), b.data(), want.data(), s.m, s.n, s.k, trans_a,
                 trans_b);
      std::vector<float> serial = c0;
      GemmAcc(a.data(), b.data(), serial.data(), s.m, s.n, s.k, trans_a,
              trans_b, /*pool=*/nullptr);
      std::vector<float> got = c0;
      GemmAcc(a.data(), b.data(), got.data(), s.m, s.n, s.k, trans_a, trans_b,
              pool);
      ASSERT_EQ(want.size(), got.size());
      for (size_t i = 0; i < want.size(); ++i) {
        const char* variant = trans_a ? (trans_b ? "TT" : "TN")
                                      : (trans_b ? "NT" : "NN");
        // Blocked (any thread count) == blocked serial, always bitwise.
        ASSERT_EQ(serial[i], got[i])
            << "m=" << s.m << " n=" << s.n << " k=" << s.k << " " << variant
            << " at " << i;
        ASSERT_NEAR(want[i], got[i], 1e-5f * (1.0f + std::abs(want[i])))
            << "m=" << s.m << " n=" << s.n << " k=" << s.k << " " << variant
            << " at " << i;
      }
    }
  }
}

TEST(KernelsGemmTest, BlockedMatchesReference) {
  for (const GemmShape& s : kShapes) CheckAllVariants(s, /*pool=*/nullptr);
}

TEST(KernelsGemmTest, ParallelMatchesSerialAndReference) {
  ThreadPool pool(3);
  for (const GemmShape& s : kShapes) CheckAllVariants(s, &pool);
}

TEST(KernelsGemmTest, ParallelLargeProblemCrossesFlopThreshold) {
  // Big enough that GemmAcc actually forks bands (kMinParallelFlops);
  // still bitwise identical to the reference.
  ThreadPool pool(4);
  CheckAllVariants({200, 160, 96}, &pool);
}

TEST(KernelsGemmTest, ZeroSizedProblemsAreNoOps) {
  float sentinel = 42.0f;
  GemmAcc(nullptr, nullptr, &sentinel, 0, 0, 0, false, false);
  EXPECT_EQ(sentinel, 42.0f);
  // k = 0: C unchanged (the sum over p is empty).
  std::vector<float> c = {1.0f, 2.0f};
  GemmAcc(nullptr, nullptr, c.data(), 1, 2, 0, false, false);
  EXPECT_EQ(c[0], 1.0f);
  EXPECT_EQ(c[1], 2.0f);
}

TEST(KernelsTest, SoftmaxRowsMatchesManual) {
  Rng rng(7);
  const int64_t rows = 5, h = 9;
  std::vector<float> x = RandomVec(rows * h, rng);
  std::vector<float> y(x.size());
  SoftmaxRows(x.data(), y.data(), rows, h);
  for (int64_t r = 0; r < rows; ++r) {
    float sum = 0;
    for (int64_t j = 0; j < h; ++j) {
      EXPECT_GT(y[r * h + j], 0.0f);
      sum += y[r * h + j];
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(KernelsTest, LayerNormRowsNormalizes) {
  Rng rng(9);
  const int64_t rows = 4, h = 16;
  std::vector<float> x = RandomVec(rows * h, rng);
  std::vector<float> gamma(h, 1.0f), beta(h, 0.0f);
  std::vector<float> y(x.size()), xhat(x.size()), inv_std(rows);
  LayerNormRows(x.data(), gamma.data(), beta.data(), 1e-5f, rows, h, y.data(),
                xhat.data(), inv_std.data());
  for (int64_t r = 0; r < rows; ++r) {
    float mean = 0, var = 0;
    for (int64_t j = 0; j < h; ++j) mean += y[r * h + j];
    mean /= h;
    for (int64_t j = 0; j < h; ++j) {
      float d = y[r * h + j] - mean;
      var += d * d;
    }
    var /= h;
    EXPECT_NEAR(mean, 0.0f, 1e-5f);
    EXPECT_NEAR(var, 1.0f, 1e-3f);
    EXPECT_GT(inv_std[r], 0.0f);
  }
  // With identity affine, y == xhat.
  for (size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], xhat[i]);
}

TEST(KernelsTest, GeluRowsMatchesClosedForm) {
  constexpr float kC = 0.7978845608028654f;
  constexpr float kA = 0.044715f;
  std::vector<float> x = {-3.0f, -1.0f, -0.1f, 0.0f, 0.1f, 1.0f, 3.0f};
  std::vector<float> y(x.size());
  GeluRows(x.data(), y.data(), static_cast<int64_t>(x.size()));
  for (size_t i = 0; i < x.size(); ++i) {
    float v = x[i];
    float u = kC * (v + kA * v * v * v);
    // The vectorized kernel uses a polynomial tanh; it must stay within a
    // tight band of the libm closed form.
    EXPECT_NEAR(y[i], 0.5f * v * (1.0f + std::tanh(u)), 1e-6f);
  }
}

TEST(KernelsTest, GeluRowsTailMatchesFullVector) {
  // The masked tail must produce byte-identical results to the same
  // elements computed inside a full 8-lane vector.
  std::vector<float> x(16);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = -4.0f + 0.53f * static_cast<float>(i);
  }
  std::vector<float> full(16), prefix(11);
  GeluRows(x.data(), full.data(), 16);
  GeluRows(x.data(), prefix.data(), 11);  // 8-lane vector + 3-lane tail
  for (size_t i = 0; i < prefix.size(); ++i) EXPECT_EQ(prefix[i], full[i]);
}

TEST(KernelsTest, SoftmaxRowsWidthIndependentOfRowCount) {
  // A row's softmax must depend only on that row's bytes, not on how many
  // rows share the call — the batch-composition byte contract.
  std::vector<float> x = {0.3f, -1.2f, 2.5f, 0.0f, 1.7f, -0.4f, 0.9f,
                          4.1f, -2.2f, 0.6f, 1.1f, -0.7f, 3.3f};
  const int64_t h = static_cast<int64_t>(x.size());
  std::vector<float> solo(x.size());
  SoftmaxRows(x.data(), solo.data(), 1, h);
  std::vector<float> batch_in;
  for (int r = 0; r < 3; ++r) batch_in.insert(batch_in.end(), x.begin(), x.end());
  std::vector<float> batch_out(batch_in.size());
  SoftmaxRows(batch_in.data(), batch_out.data(), 3, h);
  for (int r = 0; r < 3; ++r) {
    for (int64_t j = 0; j < h; ++j) {
      EXPECT_EQ(batch_out[static_cast<size_t>(r * h + j)], solo[static_cast<size_t>(j)]);
    }
  }
}

TEST(KernelsTest, SpanHelpers) {
  std::vector<float> a = {1, 2, 3}, b = {10, 20, 30}, y(3);
  AddSpan(a.data(), b.data(), y.data(), 3);
  EXPECT_EQ(y, (std::vector<float>{11, 22, 33}));
  SubSpan(b.data(), a.data(), y.data(), 3);
  EXPECT_EQ(y, (std::vector<float>{9, 18, 27}));
  MulSpan(a.data(), b.data(), y.data(), 3);
  EXPECT_EQ(y, (std::vector<float>{10, 40, 90}));
  ScaleSpan(a.data(), 2.0f, y.data(), 3);
  EXPECT_EQ(y, (std::vector<float>{2, 4, 6}));
  std::vector<float> acc = {1, 1, 1};
  AccumulateSpan(a.data(), acc.data(), 3);
  EXPECT_EQ(acc, (std::vector<float>{2, 3, 4}));
  AxpySpan(-1.0f, a.data(), acc.data(), 3);
  EXPECT_EQ(acc, (std::vector<float>{1, 1, 1}));
  MulAccumulateSpan(a.data(), b.data(), acc.data(), 3);
  EXPECT_EQ(acc, (std::vector<float>{11, 41, 91}));
}

}  // namespace
}  // namespace taste::tensor::kernels
