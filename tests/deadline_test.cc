// Deadline propagation and admission control (DESIGN.md §8): the
// Deadline/CancelToken primitives, the thread pool's bounded TrySubmit and
// graceful Shutdown, the fault injector's deadline-capped waits, and the
// pipeline executor's deterministic deadline/shedding behaviour. Every
// scenario here runs on the instant virtual clock (time_scale = 0) or pure
// in-memory primitives, so nothing depends on wall-clock timing; the
// real-time expiry scenarios live in overload_test.cc.

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "clouddb/fault_injector.h"
#include "common/deadline.h"
#include "common/thread_pool.h"
#include "core/taste_detector.h"
#include "data/table_generator.h"
#include "obs/metrics.h"
#include "pipeline/scheduler.h"

namespace taste {
namespace {

// ---------------------------------------------------------------------------
// Deadline

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.IsInfinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.RemainingMillis(), std::numeric_limits<double>::infinity());
}

TEST(DeadlineTest, GenerousBudgetIsArmedButNotExpired) {
  Deadline d = Deadline::AfterMillis(60000);
  EXPECT_FALSE(d.IsInfinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMillis(), 1000.0);
  EXPECT_LE(d.RemainingMillis(), 60000.0);
}

TEST(DeadlineTest, NonPositiveBudgetIsPreExpired) {
  EXPECT_TRUE(Deadline::AfterMillis(0).Expired());
  EXPECT_TRUE(Deadline::AfterMillis(-1).Expired());
  EXPECT_EQ(Deadline::AfterMillis(-1).RemainingMillis(), 0.0);
}

// ---------------------------------------------------------------------------
// CancelToken

TEST(CancelTokenTest, FiresOnExpiredDeadline) {
  CancelToken t(Deadline::AfterMillis(-1));
  EXPECT_TRUE(t.Cancelled());
  EXPECT_FALSE(t.CancelRequested());  // deadline, not an explicit request
  EXPECT_EQ(t.ToStatus("op").code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, FiresOnExplicitRequest) {
  CancelToken t;
  EXPECT_FALSE(t.Cancelled());
  t.RequestCancel();
  EXPECT_TRUE(t.Cancelled());
  EXPECT_TRUE(t.CancelRequested());
  EXPECT_EQ(t.ToStatus("op").code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, ParentCancellationPropagatesToChildren) {
  CancelToken batch(Deadline::AfterMillis(60000));
  CancelToken table(Deadline::AfterMillis(60000), &batch);
  EXPECT_FALSE(table.Cancelled());
  batch.RequestCancel();
  EXPECT_TRUE(table.Cancelled());
  EXPECT_EQ(table.ToStatus("op").code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, CancelledNowGuardsNull) {
  EXPECT_FALSE(CancelledNow(nullptr));
  CancelToken live;
  EXPECT_FALSE(CancelledNow(&live));
  CancelToken fired(Deadline::AfterMillis(-1));
  EXPECT_TRUE(CancelledNow(&fired));
}

// ---------------------------------------------------------------------------
// ThreadPool bounded admission + graceful shutdown

TEST(ThreadPoolAdmissionTest, TrySubmitRefusesPastBound) {
  ThreadPool pool(1, /*max_extra_queued=*/0);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  auto running = std::make_shared<std::promise<void>>();
  auto first = pool.TrySubmit([gate, running] {
    running->set_value();
    gate.wait();
  });
  ASSERT_TRUE(first.has_value());
  running->get_future().wait();  // the single worker is now occupied
  EXPECT_TRUE(pool.Full());
  auto second = pool.TrySubmit([] {});
  EXPECT_FALSE(second.has_value());  // refused, not queued
  release.set_value();
  first->wait();
  pool.WaitIdle();
  auto third = pool.TrySubmit([] {});  // capacity returned
  ASSERT_TRUE(third.has_value());
  third->wait();
}

TEST(ThreadPoolAdmissionTest, ShutdownDrainsPendingByDefault) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    pool.Submit([gate] { gate.wait(); });
    for (int i = 0; i < 4; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    release.set_value();
    pool.Shutdown(/*drain_pending=*/true);
    EXPECT_EQ(ran.load(), 4);
  }
}

TEST(ThreadPoolAdmissionTest, ShutdownCanDiscardQueueWithoutAborting) {
  std::atomic<int> ran{0};
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  auto running = std::make_shared<std::promise<void>>();
  pool.Submit([gate, running] {
    running->set_value();
    gate.wait();
  });
  running->get_future().wait();
  std::future<void> discarded = pool.Submit([&ran] { ran.fetch_add(1); });
  // Start the shutdown while the worker is still pinned on the gate: the
  // queue is discarded under the pool lock before the gate opens, so the
  // queued task can never sneak onto the freed worker.
  std::thread shutter([&pool] { pool.Shutdown(/*drain_pending=*/false); });
  while (pool.InFlight() != 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  release.set_value();
  shutter.join();
  EXPECT_EQ(ran.load(), 0);  // the queued task never ran
  EXPECT_THROW(discarded.get(), std::future_error);  // broken promise
  // Idempotent, and submission after shutdown is refused, not fatal.
  pool.Shutdown();
  EXPECT_FALSE(pool.TrySubmit([] {}).has_value());
}

// ---------------------------------------------------------------------------
// FaultInjector x deadline

TEST(FaultInjectorDeadlineTest, BurnedWaitIsCappedAtRemainingBudget) {
  clouddb::FaultConfig cfg;
  cfg.timeout_prob = 1.0;
  cfg.timeout_wait_ms = 25.0;
  clouddb::FaultInjector injector(cfg);
  auto d = injector.Decide(clouddb::DbOp::kScan, "t", 0.0,
                           /*remaining_deadline_ms=*/5.0);
  EXPECT_EQ(d.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(d.extra_latency_ms, 5.0);  // 25 ms wait cut to the budget
  EXPECT_EQ(injector.stats().deadline_truncated, 1);
  // No deadline: the full wait is burned and nothing is truncated.
  auto free = injector.Decide(clouddb::DbOp::kScan, "u", 0.0);
  EXPECT_EQ(free.extra_latency_ms, 25.0);
  EXPECT_EQ(injector.stats().deadline_truncated, 1);
}

TEST(FaultInjectorDeadlineTest, FaultChoiceIgnoresDeadline) {
  clouddb::FaultConfig cfg;
  cfg.seed = 11;
  cfg.timeout_prob = 0.3;
  cfg.latency_spike_prob = 0.3;
  clouddb::FaultInjector with_budget(cfg), without_budget(cfg);
  for (int i = 0; i < 200; ++i) {
    std::string table = "t" + std::to_string(i % 5);
    auto a = with_budget.Decide(clouddb::DbOp::kScan, table, 0.0, 1.0);
    auto b = without_budget.Decide(clouddb::DbOp::kScan, table, 0.0);
    EXPECT_EQ(a.kind, b.kind) << i;  // same deterministic fault sequence
    EXPECT_LE(a.extra_latency_ms, 1.0);
  }
}

// ---------------------------------------------------------------------------
// Pipeline executor: deterministic deadline + admission behaviour

struct Env {
  data::Dataset dataset;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer;
  std::unique_ptr<model::AdtdModel> model;
  std::unique_ptr<clouddb::SimulatedDatabase> db;
  std::vector<std::string> table_names;

  static Env Make(int tables) {
    Env e;
    e.dataset = data::GenerateDataset(data::DatasetProfile::WikiLike(tables));
    text::WordPieceTrainer trainer({.vocab_size = 400});
    for (const auto& d : data::BuildCorpusDocuments(e.dataset)) {
      trainer.AddDocument(d);
    }
    e.tokenizer = std::make_unique<text::WordPieceTokenizer>(trainer.Train());
    model::AdtdConfig cfg = model::AdtdConfig::Tiny(
        e.tokenizer->vocab().size(),
        data::SemanticTypeRegistry::Default().size());
    Rng rng(21);
    e.model = std::make_unique<model::AdtdModel>(cfg, rng);
    clouddb::CostModel cost;
    cost.time_scale = 0.0;
    e.db = std::make_unique<clouddb::SimulatedDatabase>(cost);
    TASTE_CHECK(e.db->IngestDataset(e.dataset).ok());
    for (const auto& t : e.dataset.tables) e.table_names.push_back(t.name);
    return e;
  }
};

std::vector<std::string> FirstTables(const Env& e, size_t n) {
  return std::vector<std::string>(e.table_names.begin(),
                                  e.table_names.begin() + n);
}

TEST(PipelineDeadlineTest, PreExpiredDeadlineParksEveryTable) {
  Env env = Env::Make(6);
  core::TasteDetector detector(env.model.get(), env.tokenizer.get(), {});
  pipeline::PipelineOptions popt;
  popt.deadline_ms = -1.0;  // budget exhausted before the batch starts
  pipeline::PipelineExecutor exec(&detector, env.db.get(), popt);
  auto batch = exec.RunBatch(FirstTables(env, 4));
  ASSERT_EQ(batch.tables.size(), 4u);
  for (const auto& t : batch.tables) {
    EXPECT_EQ(t.outcome, pipeline::TableOutcome::kExpired);
    EXPECT_EQ(t.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(t.result.columns.empty());  // no work was performed
  }
  EXPECT_EQ(exec.resilience_stats().expired_tables, 4);
}

TEST(PipelineDeadlineTest, PreExpiredSequentialModeMatches) {
  Env env = Env::Make(6);
  core::TasteDetector detector(env.model.get(), env.tokenizer.get(), {});
  pipeline::PipelineOptions popt;
  popt.pipelined = false;
  popt.deadline_ms = -1.0;
  pipeline::PipelineExecutor exec(&detector, env.db.get(), popt);
  auto batch = exec.RunBatch(FirstTables(env, 3));
  ASSERT_EQ(batch.tables.size(), 3u);
  for (const auto& t : batch.tables) {
    EXPECT_EQ(t.outcome, pipeline::TableOutcome::kExpired);
    EXPECT_EQ(t.status.code(), StatusCode::kDeadlineExceeded);
  }
  EXPECT_EQ(exec.resilience_stats().expired_tables, 3);
}

TEST(PipelineDeadlineTest, ExternalCancelTokenParksTheBatch) {
  Env env = Env::Make(6);
  core::TasteDetector detector(env.model.get(), env.tokenizer.get(), {});
  CancelToken client;
  client.RequestCancel();  // client went away before the batch started
  pipeline::PipelineOptions popt;
  popt.cancel = &client;
  pipeline::PipelineExecutor exec(&detector, env.db.get(), popt);
  auto batch = exec.RunBatch(FirstTables(env, 3));
  for (const auto& t : batch.tables) {
    EXPECT_EQ(t.outcome, pipeline::TableOutcome::kExpired);
    EXPECT_EQ(t.status.code(), StatusCode::kCancelled);
  }
}

TEST(PipelineDeadlineTest, GenerousDeadlineIsByteIdenticalToNone) {
  Env env = Env::Make(6);
  core::TasteDetector plain(env.model.get(), env.tokenizer.get(), {});
  core::TasteDetector budgeted(env.model.get(), env.tokenizer.get(), {});
  pipeline::PipelineOptions off;  // deadline_ms = 0: fully disarmed
  pipeline::PipelineExecutor exec_off(&plain, env.db.get(), off);
  auto a = exec_off.RunBatch(FirstTables(env, 4));
  pipeline::PipelineOptions on;
  on.deadline_ms = 60000.0;  // armed but never fires on the instant clock
  pipeline::PipelineExecutor exec_on(&budgeted, env.db.get(), on);
  auto b = exec_on.RunBatch(FirstTables(env, 4));
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (size_t i = 0; i < a.tables.size(); ++i) {
    const auto& ra = a.tables[i].result;
    const auto& rb = b.tables[i].result;
    ASSERT_TRUE(a.tables[i].status.ok());
    ASSERT_TRUE(b.tables[i].status.ok());
    EXPECT_EQ(a.tables[i].outcome, b.tables[i].outcome);
    ASSERT_EQ(ra.columns.size(), rb.columns.size());
    for (size_t c = 0; c < ra.columns.size(); ++c) {
      EXPECT_EQ(ra.columns[c].went_to_p2, rb.columns[c].went_to_p2);
      EXPECT_EQ(ra.columns[c].admitted_types, rb.columns[c].admitted_types);
      ASSERT_EQ(ra.columns[c].probabilities.size(),
                rb.columns[c].probabilities.size());
      for (size_t p = 0; p < ra.columns[c].probabilities.size(); ++p) {
        // Bit-exact: an armed-but-unfired budget must not perturb results.
        EXPECT_EQ(ra.columns[c].probabilities[p],
                  rb.columns[c].probabilities[p]);
      }
    }
  }
}

TEST(PipelineAdmissionTest, ShedsExactlyTheInputOrderTail) {
  Env env = Env::Make(8);
  const bool metrics_before = obs::MetricsEnabled();
  obs::SetMetricsEnabled(true);
  obs::Registry& reg = obs::Registry::Global();
  const int64_t shed_before =
      reg.GetCounter("taste_tables_shed_total")->Value();

  core::TasteDetector detector(env.model.get(), env.tokenizer.get(), {});
  pipeline::PipelineOptions popt;
  popt.admission.enabled = true;
  popt.admission.max_inflight_tables = 2;
  popt.admission.max_queued_tables = 1;
  pipeline::PipelineExecutor exec(&detector, env.db.get(), popt);
  auto batch = exec.RunBatch(FirstTables(env, 6));  // capacity 3 -> 3 shed
  ASSERT_EQ(batch.tables.size(), 6u);
  for (size_t i = 0; i < batch.tables.size(); ++i) {
    const auto& t = batch.tables[i];
    if (i < 3) {
      EXPECT_TRUE(t.status.ok()) << i << ": " << t.status.ToString();
      EXPECT_EQ(t.outcome, pipeline::TableOutcome::kComplete) << i;
    } else {
      EXPECT_EQ(t.outcome, pipeline::TableOutcome::kShed) << i;
      EXPECT_EQ(t.status.code(), StatusCode::kUnavailable) << i;
      EXPECT_EQ(t.result.table_name, env.table_names[i]);
    }
  }
  EXPECT_EQ(exec.resilience_stats().shed_tables, 3);
  EXPECT_LE(exec.stats().max_tables_in_flight, 2);
  EXPECT_GE(exec.stats().max_tables_in_flight, 1);
  EXPECT_EQ(reg.GetCounter("taste_tables_shed_total")->Value() - shed_before,
            3);
  obs::SetMetricsEnabled(metrics_before);
}

TEST(PipelineAdmissionTest, DisabledPolicyAdmitsEverything) {
  Env env = Env::Make(6);
  core::TasteDetector detector(env.model.get(), env.tokenizer.get(), {});
  pipeline::PipelineExecutor exec(&detector, env.db.get(), {});
  auto batch = exec.RunBatch(FirstTables(env, 5));
  for (const auto& t : batch.tables) {
    EXPECT_TRUE(t.status.ok()) << t.status.ToString();
    EXPECT_EQ(t.outcome, pipeline::TableOutcome::kComplete);
  }
  EXPECT_EQ(exec.resilience_stats().shed_tables, 0);
}

}  // namespace
}  // namespace taste
