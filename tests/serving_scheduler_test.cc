// Unit tests of the continuous-batching serving scheduler's CONTROL PLANE:
// lane priority, deadline shedding before batch formation, breaker-open
// fast-fail, continuous admission into the in-flight stream, cost-model
// batch sizing, and the terminal-accounting/metric contracts. The data
// plane (byte-identity of coalesced forwards against the real model) is
// covered by tests/batching_diff_test.cc; here the forward is the
// Options::forward_fn test seam, which freezes timing with latches and
// records every batch composition the scheduler forms.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/retry.h"
#include "core/cost_model.h"
#include "obs/metrics.h"
#include "pipeline/serving_scheduler.h"

namespace taste::pipeline {
namespace {

// A request body with a chosen token count (the cost model only reads
// content->token_ids.size(); the forward is stubbed).
struct Body {
  model::EncodedContent content;
  model::EncodedMetadata meta;
  model::AdtdModel::MetadataEncoding enc;

  explicit Body(int tokens) { content.token_ids.assign(tokens, 1); }
};

/// Records every batch the scheduler forms (as content-pointer lists) and
/// optionally blocks the FIRST forward until Release() — the "plug" that
/// lets tests pile requests up behind a known in-flight batch.
class RecordingForward {
 public:
  explicit RecordingForward(bool plug_first = false)
      : plug_first_(plug_first) {}

  std::vector<tensor::Tensor> operator()(
      const std::vector<model::AdtdModel::P2BatchItem>& items,
      tensor::ExecContext*) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      std::vector<const model::EncodedContent*> batch;
      for (const auto& it : items) batch.push_back(it.content);
      batches_.push_back(std::move(batch));
      if (plug_first_ && batches_.size() == 1) {
        first_running_ = true;
        cv_.notify_all();
        cv_.wait(lock, [&] { return released_; });
      }
    }
    return std::vector<tensor::Tensor>(items.size(),
                                       tensor::Tensor::Zeros({1, 1}));
  }

  /// Blocks until the plugged first forward is executing.
  void AwaitFirstRunning() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return first_running_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }
  std::vector<std::vector<const model::EncodedContent*>> batches() {
    std::lock_guard<std::mutex> lock(mu_);
    return batches_;
  }

 private:
  const bool plug_first_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool first_running_ = false;
  bool released_ = false;
  std::vector<std::vector<const model::EncodedContent*>> batches_;
};

Result<tensor::Tensor> SubmitBody(ServingScheduler* s, Body* b, Lane lane,
                                  const CancelToken* cancel = nullptr,
                                  const std::string& table = "t") {
  return s->Submit(table, b->content, b->meta, b->enc, cancel,
                   /*ctx=*/nullptr, lane);
}

/// Spins until the scheduler has `n` requests parked in its queues.
void AwaitQueued(const ServingScheduler& s, int n) {
  while (s.queued() < n) std::this_thread::yield();
}

TEST(ServingSchedulerTest, InteractiveLaneDrainsBeforeBulkUnderContention) {
  // Plug the first forward, pile up 2 bulk + 2 interactive requests behind
  // it, then release. With max_items = 2 the next batch must be BOTH
  // interactive requests and the one after it both bulk requests — lane
  // priority decides batch membership, not arrival order (bulk arrives
  // first here).
  RecordingForward rec(/*plug_first=*/true);
  ServingScheduler::Options opt;
  opt.scheduling.max_items = 2;
  opt.scheduling.max_inflight_batches = 1;
  opt.forward_fn = std::ref(rec);
  ServingScheduler sched(/*model=*/nullptr, opt);

  Body plug(4), bulk1(4), bulk2(4), int1(4), int2(4);
  std::thread plug_thread(
      [&] { ASSERT_TRUE(SubmitBody(&sched, &plug, Lane::kInteractive).ok()); });
  rec.AwaitFirstRunning();

  std::vector<std::thread> waiters;
  waiters.emplace_back(
      [&] { ASSERT_TRUE(SubmitBody(&sched, &bulk1, Lane::kBulk).ok()); });
  waiters.emplace_back(
      [&] { ASSERT_TRUE(SubmitBody(&sched, &bulk2, Lane::kBulk).ok()); });
  AwaitQueued(sched, 2);  // both bulk requests parked first
  waiters.emplace_back(
      [&] { ASSERT_TRUE(SubmitBody(&sched, &int1, Lane::kInteractive).ok()); });
  waiters.emplace_back(
      [&] { ASSERT_TRUE(SubmitBody(&sched, &int2, Lane::kInteractive).ok()); });
  AwaitQueued(sched, 4);
  rec.Release();
  plug_thread.join();
  for (auto& t : waiters) t.join();

  auto batches = rec.batches();
  ASSERT_EQ(batches.size(), 3u);
  ASSERT_EQ(batches[1].size(), 2u);
  EXPECT_TRUE((batches[1][0] == &int1.content && batches[1][1] == &int2.content) ||
              (batches[1][0] == &int2.content && batches[1][1] == &int1.content))
      << "second batch must be the interactive pair";
  ASSERT_EQ(batches[2].size(), 2u);
  EXPECT_TRUE((batches[2][0] == &bulk1.content && batches[2][1] == &bulk2.content) ||
              (batches[2][0] == &bulk2.content && batches[2][1] == &bulk1.content))
      << "third batch must be the bulk pair";
  const auto st = sched.stats();
  EXPECT_EQ(st.items, 5);
  EXPECT_EQ(st.lane_items[0], 3);  // plug + 2 interactive
  EXPECT_EQ(st.lane_items[1], 2);
}

TEST(ServingSchedulerTest, ExpiredRequestShedsBeforeBatchFormation) {
  // A fired token is rejected at admission: no queueing, no batch, and the
  // shed lands on the pipeline's load-shedding counter
  // (taste_tables_shed_total) as well as the legacy expiry counter.
  obs::SetMetricsEnabled(true);
  obs::Registry& reg = obs::Registry::Global();
  const int64_t shed_before =
      reg.GetCounter("taste_tables_shed_total")->Value();
  const int64_t expired_before =
      reg.GetCounter("taste_p2_batch_expired_total")->Value();

  RecordingForward rec;
  ServingScheduler::Options opt;
  opt.forward_fn = std::ref(rec);
  ServingScheduler sched(nullptr, opt);
  Body b(4);
  CancelToken fired(Deadline::AfterMillis(-1.0));
  auto got = SubmitBody(&sched, &b, Lane::kInteractive, &fired);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(sched.stats().expired_in_queue, 1);
  EXPECT_EQ(sched.stats().batches, 0);
  EXPECT_TRUE(rec.batches().empty());
  EXPECT_EQ(reg.GetCounter("taste_tables_shed_total")->Value(),
            shed_before + 1);
  EXPECT_EQ(reg.GetCounter("taste_p2_batch_expired_total")->Value(),
            expired_before + 1);
}

TEST(ServingSchedulerTest, TokenFiringWhileQueuedShedsWithoutForward) {
  // A request whose token fires WHILE PARKED behind an in-flight forward
  // is resolved as shed when the next leader drains the queue — it must
  // never ride the packed forward it was waiting for.
  obs::SetMetricsEnabled(true);
  obs::Registry& reg = obs::Registry::Global();
  const int64_t shed_before =
      reg.GetCounter("taste_tables_shed_total")->Value();

  RecordingForward rec(/*plug_first=*/true);
  ServingScheduler::Options opt;
  opt.scheduling.max_inflight_batches = 1;
  opt.forward_fn = std::ref(rec);
  ServingScheduler sched(nullptr, opt);

  Body plug(4), doomed(4);
  CancelToken cancel{Deadline()};  // no deadline; cancelled explicitly
  std::thread plug_thread(
      [&] { ASSERT_TRUE(SubmitBody(&sched, &plug, Lane::kInteractive).ok()); });
  rec.AwaitFirstRunning();
  std::thread doomed_thread([&] {
    auto got = SubmitBody(&sched, &doomed, Lane::kInteractive, &cancel);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kCancelled);
  });
  AwaitQueued(sched, 1);
  cancel.RequestCancel();
  rec.Release();
  plug_thread.join();
  doomed_thread.join();

  // Only the plug's forward ever ran; the doomed request formed no batch.
  ASSERT_EQ(rec.batches().size(), 1u);
  EXPECT_EQ(sched.stats().items, 1);
  EXPECT_EQ(sched.stats().expired_in_queue, 1);
  EXPECT_EQ(reg.GetCounter("taste_tables_shed_total")->Value(),
            shed_before + 1);
}

TEST(ServingSchedulerTest, OpenBreakerFastFailsWithoutQueueing) {
  BreakerRegistry breakers(
      {.failure_threshold = 2, .open_cooldown_rejections = 1 << 30});
  CircuitBreaker* b = breakers.Get("down");
  b->RecordFailure();
  b->RecordFailure();
  ASSERT_EQ(b->state(), CircuitBreaker::State::kOpen);
  const int64_t short_circuits_before = b->short_circuits();

  RecordingForward rec;
  ServingScheduler::Options opt;
  opt.scheduling.breaker_fast_fail = true;
  opt.breakers = &breakers;
  opt.forward_fn = std::ref(rec);
  ServingScheduler sched(nullptr, opt);

  Body body(4);
  auto got = SubmitBody(&sched, &body, Lane::kInteractive, nullptr, "down");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(sched.stats().fast_fails, 1);
  EXPECT_EQ(sched.stats().batches, 0);
  // The fast-fail path reads breaker state const — it must not consume an
  // Allow() probe or advance the open->half-open cooldown.
  EXPECT_EQ(b->short_circuits(), short_circuits_before);
  EXPECT_EQ(b->state(), CircuitBreaker::State::kOpen);

  // Healthy tables (no breaker entry) pass; with fast-fail off even the
  // down table goes through to the forward.
  EXPECT_TRUE(SubmitBody(&sched, &body, Lane::kInteractive, nullptr, "up").ok());
  ServingScheduler::Options off = opt;
  off.scheduling.breaker_fast_fail = false;
  ServingScheduler lenient(nullptr, off);
  EXPECT_TRUE(
      SubmitBody(&lenient, &body, Lane::kInteractive, nullptr, "down").ok());
}

TEST(ServingSchedulerTest, ArrivalDuringInflightForwardJoinsNextForward) {
  // Continuous admission: requests arriving while a forward is EXECUTING
  // coalesce into the next packed forward the moment the current one
  // retires — no window, no timer, no fixed boundary.
  RecordingForward rec(/*plug_first=*/true);
  ServingScheduler::Options opt;
  opt.scheduling.max_inflight_batches = 1;
  opt.scheduling.max_items = 8;
  opt.forward_fn = std::ref(rec);
  ServingScheduler sched(nullptr, opt);

  Body plug(4), late1(4), late2(4), late3(4);
  std::thread plug_thread(
      [&] { ASSERT_TRUE(SubmitBody(&sched, &plug, Lane::kInteractive).ok()); });
  rec.AwaitFirstRunning();
  // These arrive mid-flight; they must all ride ONE next forward.
  std::vector<std::thread> late;
  for (Body* b : {&late1, &late2, &late3}) {
    late.emplace_back(
        [&, b] { ASSERT_TRUE(SubmitBody(&sched, b, Lane::kInteractive).ok()); });
  }
  AwaitQueued(sched, 3);
  rec.Release();
  plug_thread.join();
  for (auto& t : late) t.join();

  auto batches = rec.batches();
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].size(), 1u);
  EXPECT_EQ(batches[1].size(), 3u) << "all mid-flight arrivals must "
                                      "coalesce into the next forward";
  EXPECT_EQ(sched.stats().batches, 2);
  EXPECT_EQ(sched.stats().max_batch_items, 3);
}

TEST(ServingSchedulerTest, CostCapLimitsBatchAndOversizedItemRunsAlone) {
  // Cost model: overhead 0, 1 ms per token, cap 8 ms. Three queued 4-token
  // requests -> the leader drains exactly two (8 ms) and leaves the third
  // for the next forward. A 100-token item always runs (alone).
  RecordingForward rec(/*plug_first=*/true);
  ServingScheduler::Options opt;
  opt.scheduling.max_inflight_batches = 1;
  opt.scheduling.max_items = 8;
  opt.scheduling.max_batch_cost_ms = 8.0;
  opt.scheduling.cost_model =
      core::P2CostModel({.overhead_ms = 0.0, .ms_per_token = 1.0});
  opt.forward_fn = std::ref(rec);
  ServingScheduler sched(nullptr, opt);

  Body plug(4), a(4), b(4), c(4), huge(100);
  std::thread plug_thread(
      [&] { ASSERT_TRUE(SubmitBody(&sched, &plug, Lane::kInteractive).ok()); });
  rec.AwaitFirstRunning();
  std::vector<std::thread> waiters;
  for (Body* w : {&a, &b, &c}) {
    waiters.emplace_back(
        [&, w] { ASSERT_TRUE(SubmitBody(&sched, w, Lane::kInteractive).ok()); });
  }
  AwaitQueued(sched, 3);
  rec.Release();
  plug_thread.join();
  for (auto& t : waiters) t.join();
  EXPECT_TRUE(SubmitBody(&sched, &huge, Lane::kInteractive).ok());

  auto batches = rec.batches();
  ASSERT_EQ(batches.size(), 4u);
  EXPECT_EQ(batches[1].size(), 2u) << "cost cap must stop the drain at 8 ms";
  EXPECT_EQ(batches[2].size(), 1u);
  ASSERT_EQ(batches[3].size(), 1u);
  EXPECT_EQ(batches[3][0], &huge.content) << "oversized item runs alone";
}

TEST(P2CostModelTest, CalibrateRecoversLinearFit) {
  core::P2CostModel cm;
  // ms = 0.5 + 0.02 * tokens, exactly.
  std::vector<std::pair<int64_t, double>> samples;
  for (int64_t t : {10, 50, 100, 400, 1000}) {
    samples.emplace_back(t, 0.5 + 0.02 * static_cast<double>(t));
  }
  ASSERT_TRUE(cm.Calibrate(samples));
  EXPECT_NEAR(cm.params().overhead_ms, 0.5, 1e-9);
  EXPECT_NEAR(cm.params().ms_per_token, 0.02, 1e-12);
  EXPECT_NEAR(cm.EstimateBatchMs(200), 4.5, 1e-9);
  // Degenerate inputs keep the previous parameters.
  core::P2CostModel untouched;
  const double before = untouched.params().ms_per_token;
  EXPECT_FALSE(untouched.Calibrate({}));
  EXPECT_FALSE(untouched.Calibrate({{100, 1.0}}));
  EXPECT_FALSE(untouched.Calibrate({{100, 1.0}, {100, 2.0}}));  // det == 0
  EXPECT_EQ(untouched.params().ms_per_token, before);
}

TEST(P2CostModelTest, MaxItemsUnderCapAlwaysAdmitsOne) {
  core::P2CostModel cm({.overhead_ms = 0.0, .ms_per_token = 1.0});
  const std::vector<int64_t> fours(16, 4);
  EXPECT_EQ(cm.MaxItemsUnderCap(fours, 8.0, 16), 2);
  EXPECT_EQ(cm.MaxItemsUnderCap(fours, 100.0, 16), 16);  // max_items clamp
  EXPECT_EQ(cm.MaxItemsUnderCap({100, 100}, 8.0, 16), 1);  // oversized: 1
  EXPECT_EQ(cm.MaxItemsUnderCap(fours, 0.0, 5), 5);  // cap <= 0: uncapped
}

TEST(P2CostModelTest, ProfitableInflightBatchesScalesWithCores) {
  EXPECT_EQ(core::P2CostModel::ProfitableInflightBatches(1), 1);
  EXPECT_EQ(core::P2CostModel::ProfitableInflightBatches(2), 1);
  EXPECT_EQ(core::P2CostModel::ProfitableInflightBatches(4), 2);
  EXPECT_EQ(core::P2CostModel::ProfitableInflightBatches(8), 4);
}

TEST(ServingSchedulerTest, SingleLaneModeIgnoresLaneTag) {
  RecordingForward rec;
  ServingScheduler::Options opt;
  opt.scheduling.lanes = 1;
  opt.forward_fn = std::ref(rec);
  ServingScheduler sched(nullptr, opt);
  Body b(4);
  ASSERT_TRUE(SubmitBody(&sched, &b, Lane::kBulk).ok());
  // With one lane the bulk tag collapses to interactive.
  EXPECT_EQ(sched.stats().lane_items[0], 1);
  EXPECT_EQ(sched.stats().lane_items[1], 0);
}

}  // namespace
}  // namespace taste::pipeline
