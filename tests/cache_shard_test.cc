// Tests for the sharded LatentCache: LRU semantics per shard, aggregate
// stats/bytes accounting (including the Put-refresh no-drift regression),
// and a ThreadSanitizer stress over concurrent Get/Put/Clear/ApproxBytes
// with key skew (tsan-heavy label; the TSan CI job runs exactly this).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "model/latent_cache.h"
#include "obs/metrics.h"

namespace taste::model {
namespace {

/// A cache entry whose tensor payload is `rows * 4` floats.
CachedMetadata MakeEntry(int64_t rows) {
  CachedMetadata v;
  std::vector<float> data(static_cast<size_t>(rows) * 4, 1.0f);
  v.encoding.layer_latents.push_back(
      tensor::Tensor::FromVector({rows, 4}, std::move(data)));
  return v;
}

int64_t EntryPayloadBytes(int64_t rows) {
  return rows * 4 * static_cast<int64_t>(sizeof(float));
}

TEST(CacheShardTest, RoutesAndAggregatesAcrossShards) {
  LatentCache cache(/*capacity=*/64, /*shards=*/4);
  EXPECT_EQ(cache.num_shards(), 4);
  for (int i = 0; i < 32; ++i) {
    cache.Put("table" + std::to_string(i) + "#0", MakeEntry(2));
  }
  EXPECT_EQ(cache.size(), 32u);
  EXPECT_EQ(cache.ApproxBytes(), 32 * EntryPayloadBytes(2));
  int hits = 0;
  for (int i = 0; i < 32; ++i) {
    if (cache.Get("table" + std::to_string(i) + "#0")) ++hits;
  }
  EXPECT_EQ(hits, 32);
  EXPECT_EQ(cache.stats().hits, 32);
  EXPECT_FALSE(cache.Get("absent"));
  EXPECT_EQ(cache.stats().misses, 1);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.ApproxBytes(), 0);
}

TEST(CacheShardTest, ShardCapacityBoundsTotalEntries) {
  // capacity 8 over 4 shards = 2 per shard; 100 distinct keys can keep at
  // most 8 entries resident, with evictions counted.
  LatentCache cache(/*capacity=*/8, /*shards=*/4);
  for (int i = 0; i < 100; ++i) {
    cache.Put("k" + std::to_string(i), MakeEntry(1));
  }
  EXPECT_LE(cache.size(), 8u);
  EXPECT_GE(cache.stats().evictions, 100 - 8);
  EXPECT_EQ(cache.ApproxBytes(),
            static_cast<int64_t>(cache.size()) * EntryPayloadBytes(1));
}

TEST(CacheShardTest, SingleShardKeepsHistoricalLruBehaviour) {
  LatentCache cache(/*capacity=*/2, /*shards=*/1);
  cache.Put("a", MakeEntry(1));
  cache.Put("b", MakeEntry(1));
  ASSERT_TRUE(cache.Get("a"));  // a is now most recent
  cache.Put("c", MakeEntry(1));  // evicts b
  EXPECT_TRUE(cache.Get("a"));
  EXPECT_FALSE(cache.Get("b"));
  EXPECT_TRUE(cache.Get("c"));
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(CacheShardTest, PutRefreshDoesNotDriftBytesOrGauge) {
  // Regression: replacing an entry with a different-sized payload must
  // leave ApproxBytes equal to the live payload, and the process-wide
  // taste_cache_bytes gauge must move by exactly the same deltas — no
  // drift after any number of refreshes.
  obs::SetMetricsEnabled(true);
  obs::Gauge* gauge = obs::Registry::Global().GetGauge("taste_cache_bytes");
  obs::Gauge* entries = obs::Registry::Global().GetGauge("taste_cache_entries");
  const double gauge_before = gauge->Value();
  const double entries_before = entries->Value();
  {
    LatentCache cache(/*capacity=*/16, /*shards=*/4);
    const int64_t sizes[] = {3, 11, 1, 7, 7, 2, 19, 5};
    for (int round = 0; round < 50; ++round) {
      const int64_t rows = sizes[round % 8];
      cache.Put("refreshed#0", MakeEntry(rows));
      cache.Put("steady#0", MakeEntry(4));
      EXPECT_EQ(cache.ApproxBytes(),
                EntryPayloadBytes(rows) + EntryPayloadBytes(4))
          << "round " << round;
      EXPECT_EQ(gauge->Value() - gauge_before,
                static_cast<double>(cache.ApproxBytes()))
          << "round " << round;
      EXPECT_EQ(cache.size(), 2u);
      EXPECT_EQ(entries->Value() - entries_before, 2.0);
    }
  }
  // Destruction returns the cache's whole contribution.
  EXPECT_EQ(gauge->Value(), gauge_before);
  EXPECT_EQ(entries->Value(), entries_before);
  obs::SetMetricsEnabled(false);
}

TEST(CacheShardTest, ConcurrentSkewedStressKeepsStatsConsistent) {
  // 8 threads hammer Get/Put/Clear/ApproxBytes with a skewed key
  // distribution (70% of ops on 8 hot keys). Under TSan this is the data
  // race probe for the sharded lock scheme; under plain builds it checks
  // the aggregate-stats invariant: every Get counts exactly one hit or
  // miss, so stats().hits + stats().misses equals the op tally and
  // stats().hits equals the number of Gets that returned a value.
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  LatentCache cache(/*capacity=*/32, /*shards=*/4);
  std::atomic<int64_t> total_gets{0};
  std::atomic<int64_t> observed_hits{0};
  std::atomic<int64_t> total_puts{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      int64_t gets = 0, hits = 0, puts = 0;
      for (int op = 0; op < kOpsPerThread; ++op) {
        const bool hot = rng.NextU64() % 10 < 7;
        std::string key =
            (hot ? "hot" : "cold") +
            std::to_string(rng.NextU64() % (hot ? 8 : 256));
        const uint64_t kind = rng.NextU64() % 100;
        if (kind < 55) {
          ++gets;
          if (cache.Get(key)) ++hits;
        } else if (kind < 90) {
          ++puts;
          cache.Put(key, MakeEntry(1 + static_cast<int64_t>(
                                           rng.NextU64() % 4)));
        } else if (kind < 99) {
          (void)cache.ApproxBytes();
          (void)cache.size();
        } else {
          cache.Clear();
        }
      }
      total_gets += gets;
      observed_hits += hits;
      total_puts += puts;
    });
  }
  for (auto& th : threads) th.join();
  const LatentCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, total_gets.load());
  EXPECT_EQ(stats.hits, observed_hits.load());
  EXPECT_LE(stats.evictions, total_puts.load());
  // Byte accounting settles to exactly the live payload once quiescent.
  const int64_t bytes = cache.ApproxBytes();
  EXPECT_GE(bytes, 0);
  cache.Clear();
  EXPECT_EQ(cache.ApproxBytes(), 0);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CacheShardTest, SingleShardEvictionRacingPutRefreshKeepsExactBytes) {
  // Regression for the worst-case accounting interleaving: with ONE shard
  // every Put contends on the same lock, so refreshes of a hot key (erase
  // old bytes, insert new bytes) constantly interleave with capacity
  // evictions triggered by cold-key inserts from other threads. Any
  // accounting path that double-subtracts an evicted refresh — or misses
  // the old bytes of a refreshed entry — drifts ApproxBytes and the
  // process-wide gauge; both must land EXACTLY back at baseline.
  obs::SetMetricsEnabled(true);
  obs::Gauge* gauge = obs::Registry::Global().GetGauge("taste_cache_bytes");
  obs::Gauge* entries = obs::Registry::Global().GetGauge("taste_cache_entries");
  const double gauge_before = gauge->Value();
  const double entries_before = entries->Value();
  {
    constexpr int kThreads = 8;
    // Capacity 4 on 1 shard: nearly every cold Put evicts.
    LatentCache cache(/*capacity=*/4, /*shards=*/1);
    ASSERT_EQ(cache.num_shards(), 1);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(static_cast<uint64_t>(t) * 31 + 7);
        for (int op = 0; op < 3000; ++op) {
          if (t % 2 == 0) {
            // Refresher: hammer 2 hot keys with varying payload sizes, so
            // the erase-old/insert-new byte deltas differ every round.
            cache.Put("hot" + std::to_string(rng.NextU64() % 2),
                      MakeEntry(1 + static_cast<int64_t>(rng.NextU64() % 9)));
          } else {
            // Evictor: cold keys overflow the 4-entry budget immediately.
            cache.Put("cold" + std::to_string(rng.NextU64() % 64),
                      MakeEntry(1 + static_cast<int64_t>(rng.NextU64() % 3)));
          }
          if (op % 16 == 0) {
            EXPECT_GE(cache.ApproxBytes(), 0) << "negative byte tally";
            (void)cache.Get("hot0");
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    // Quiescent: the tally must equal the gauge delta (same AddBytes calls)
    // and the resident set must be within the single shard's budget.
    EXPECT_LE(cache.size(), 4u);
    EXPECT_EQ(gauge->Value() - gauge_before,
              static_cast<double>(cache.ApproxBytes()));
    EXPECT_EQ(entries->Value() - entries_before,
              static_cast<double>(cache.size()));
    cache.Clear();
    EXPECT_EQ(cache.ApproxBytes(), 0);
  }
  // Destruction returns the cache's whole contribution: zero drift after
  // ~24k racing refreshes and evictions.
  EXPECT_EQ(gauge->Value(), gauge_before);
  EXPECT_EQ(entries->Value(), entries_before);
  obs::SetMetricsEnabled(false);
}

TEST(CacheShardTest, ConcurrentClearNeverYieldsNegativeAccounting) {
  // Clear locks all shards; racing Put/Clear must never drive the byte
  // tally negative or strand entries.
  constexpr int kThreads = 4;
  LatentCache cache(/*capacity=*/8, /*shards=*/8);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 99);
      for (int op = 0; op < 2000; ++op) {
        if (rng.NextU64() % 20 == 0) {
          cache.Clear();
        } else {
          cache.Put("k" + std::to_string(rng.NextU64() % 64), MakeEntry(2));
          EXPECT_GE(cache.ApproxBytes(), 0);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  cache.Clear();
  EXPECT_EQ(cache.ApproxBytes(), 0);
}

}  // namespace
}  // namespace taste::model
