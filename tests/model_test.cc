// Tests for the model layer: non-textual features, input encoding (layout,
// anchors, masks, splitting), the ADTD forward passes (shapes, asymmetric
// attention semantics), the latent cache, and short end-to-end training
// runs (MLM + fine-tuning) that must reduce loss.

#include <gtest/gtest.h>

#include "clouddb/database.h"
#include "data/table_generator.h"
#include "model/adtd.h"
#include "model/input_encoding.h"
#include "model/latent_cache.h"
#include "model/trainer.h"
#include "tensor/ops.h"

namespace taste::model {
namespace {

using tensor::Shape;
using tensor::Tensor;

// ---- shared fixtures --------------------------------------------------------

text::WordPieceTokenizer BuildTokenizer(const data::Dataset& ds) {
  text::WordPieceTrainer trainer({.vocab_size = 600, .min_pair_frequency = 2});
  for (const auto& doc : data::BuildCorpusDocuments(ds)) {
    trainer.AddDocument(doc);
  }
  return text::WordPieceTokenizer(trainer.Train());
}

struct Fixture {
  data::Dataset dataset;
  text::WordPieceTokenizer tokenizer;
  std::unique_ptr<clouddb::SimulatedDatabase> db;

  static Fixture Make(int tables = 12) {
    data::DatasetProfile profile = data::DatasetProfile::WikiLike(tables);
    data::Dataset ds = data::GenerateDataset(profile);
    text::WordPieceTokenizer tok = BuildTokenizer(ds);
    clouddb::CostModel cost;
    cost.time_scale = 0.0;
    return Fixture{std::move(ds), std::move(tok),
                   std::make_unique<clouddb::SimulatedDatabase>(cost)};
  }
};

clouddb::TableMetadata FirstTableMeta(Fixture& f) {
  TASTE_CHECK(f.db->IngestDataset(f.dataset, /*with_histograms=*/true).ok());
  auto conn = f.db->Connect();
  auto meta = conn->GetTableMetadata(f.dataset.tables[0].name);
  TASTE_CHECK(meta.ok());
  return *meta;
}

// ---- features ----------------------------------------------------------------

TEST(FeaturesTest, SqlTypeCategorization) {
  EXPECT_EQ(CategorizeSqlType("int"), SqlTypeCategory::kInteger);
  EXPECT_EQ(CategorizeSqlType("tinyint(1)"), SqlTypeCategory::kInteger);
  EXPECT_EQ(CategorizeSqlType("decimal(10,2)"), SqlTypeCategory::kDecimal);
  EXPECT_EQ(CategorizeSqlType("double"), SqlTypeCategory::kDecimal);
  EXPECT_EQ(CategorizeSqlType("varchar(20)"), SqlTypeCategory::kShortChar);
  EXPECT_EQ(CategorizeSqlType("varchar(255)"), SqlTypeCategory::kLongText);
  EXPECT_EQ(CategorizeSqlType("text"), SqlTypeCategory::kLongText);
  EXPECT_EQ(CategorizeSqlType("date"), SqlTypeCategory::kDate);
  EXPECT_EQ(CategorizeSqlType("time"), SqlTypeCategory::kTime);
  EXPECT_EQ(CategorizeSqlType("datetime"), SqlTypeCategory::kDatetime);
  EXPECT_EQ(CategorizeSqlType("geometry"), SqlTypeCategory::kOther);
}

TEST(FeaturesTest, OneHotBlockIsExclusive) {
  clouddb::ColumnMetadata cm;
  cm.data_type = "int";
  NonTextualFeatures f = ComputeFeatures(cm, 100, false);
  float sum = 0;
  for (int i = 0; i < static_cast<int>(SqlTypeCategory::kNumCategories); ++i) {
    sum += f.values[static_cast<size_t>(i)];
  }
  EXPECT_EQ(sum, 1.0f);
}

TEST(FeaturesTest, HistogramBlockGatedByFlag) {
  clouddb::ColumnMetadata cm;
  cm.data_type = "int";
  cm.histogram = clouddb::BuildHistogram({"1", "2", "3", "4"}, 4);
  NonTextualFeatures with = ComputeFeatures(cm, 4, /*use_histogram=*/true);
  NonTextualFeatures without = ComputeFeatures(cm, 4, /*use_histogram=*/false);
  EXPECT_EQ(with.values[16], 1.0f);    // histogram-present indicator
  EXPECT_EQ(without.values[16], 0.0f);
}

TEST(FeaturesTest, ValuesAreBounded) {
  clouddb::ColumnMetadata cm;
  cm.data_type = "varchar(255)";
  cm.num_distinct = 1000000;
  cm.null_fraction = 2.0;  // corrupt input still must not blow up
  cm.avg_length = 1e6;
  cm.min_value = "-99999999";
  NonTextualFeatures f = ComputeFeatures(cm, 10, true);
  for (float v : f.values) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

// ---- input encoding -------------------------------------------------------------

TEST(SplitTest, SplitsWideTables) {
  clouddb::TableMetadata meta;
  meta.table_name = "wide";
  meta.columns.resize(45);
  for (int i = 0; i < 45; ++i) meta.columns[i].ordinal = i;
  auto chunks = SplitWideTable(meta, 20);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].columns.size(), 20u);
  EXPECT_EQ(chunks[2].columns.size(), 5u);
  EXPECT_EQ(chunks[2].columns[0].ordinal, 40);
  EXPECT_EQ(chunks[1].table_name, "wide");
}

TEST(SplitTest, NarrowTableSingleChunk) {
  clouddb::TableMetadata meta;
  meta.columns.resize(3);
  auto chunks = SplitWideTable(meta, 20);
  EXPECT_EQ(chunks.size(), 1u);
}

TEST(EncodingTest, MetadataLayoutAndAnchors) {
  Fixture f = Fixture::Make();
  clouddb::TableMetadata meta = FirstTableMeta(f);
  InputConfig cfg;
  InputEncoder enc(&f.tokenizer, cfg);
  EncodedMetadata em = enc.EncodeMetadata(meta);
  int ncols = static_cast<int>(meta.columns.size());
  EXPECT_EQ(em.num_columns, ncols);
  ASSERT_EQ(em.column_anchors.size(), static_cast<size_t>(ncols));
  // Expected total length: table segment + ncols * (1 + col_meta_tokens).
  EXPECT_EQ(static_cast<int>(em.token_ids.size()),
            cfg.table_tokens + ncols * (1 + cfg.col_meta_tokens));
  // Every anchor is a [CLS].
  EXPECT_EQ(em.token_ids[0], text::Vocab::kClsId);
  for (int a : em.column_anchors) {
    EXPECT_EQ(em.token_ids[static_cast<size_t>(a)], text::Vocab::kClsId);
  }
  EXPECT_EQ(em.features.shape(),
            (Shape{ncols, NonTextualFeatures::kDim}));
  int64_t sm = static_cast<int64_t>(em.token_ids.size());
  EXPECT_EQ(em.attention_mask.shape(), (Shape{sm, sm}));
}

TEST(EncodingTest, MaskBlocksExactlyPadKeys) {
  Fixture f = Fixture::Make();
  clouddb::TableMetadata meta = FirstTableMeta(f);
  InputEncoder enc(&f.tokenizer, InputConfig{});
  EncodedMetadata em = enc.EncodeMetadata(meta);
  int64_t sm = static_cast<int64_t>(em.token_ids.size());
  for (int64_t k = 0; k < sm; ++k) {
    bool is_pad = em.token_ids[static_cast<size_t>(k)] == text::Vocab::kPadId;
    float m = em.attention_mask.data()[k];  // first query row
    EXPECT_EQ(m < -1e8f, is_pad) << "key " << k;
  }
}

TEST(EncodingTest, ContentSegmentsAndAnchors) {
  Fixture f = Fixture::Make();
  clouddb::TableMetadata meta = FirstTableMeta(f);
  InputConfig cfg;
  InputEncoder enc(&f.tokenizer, cfg);
  EncodedMetadata em = enc.EncodeMetadata(meta);
  std::map<int, std::vector<std::string>> content;
  content[0] = {"alpha", "beta", "gamma"};
  if (em.num_columns > 1) content[1] = {"1", "2"};
  EncodedContent ec = enc.EncodeContent(em, content);
  ASSERT_EQ(ec.scanned.size(), content.size());
  int seg = 1 + cfg.cells_per_column * cfg.cell_tokens;
  EXPECT_EQ(static_cast<int>(ec.token_ids.size()),
            seg * static_cast<int>(content.size()));
  for (size_t i = 0; i < ec.scanned.size(); ++i) {
    EXPECT_EQ(ec.column_anchors[i], static_cast<int>(i) * seg);
    EXPECT_EQ(ec.token_ids[static_cast<size_t>(ec.column_anchors[i])],
              text::Vocab::kClsId);
  }
  int64_t sc = static_cast<int64_t>(ec.token_ids.size());
  int64_t sm = static_cast<int64_t>(em.token_ids.size());
  EXPECT_EQ(ec.cross_mask.shape(), (Shape{sc, sm + sc}));
}

TEST(EncodingTest, EmptyCellsSkipped) {
  Fixture f = Fixture::Make();
  clouddb::TableMetadata meta = FirstTableMeta(f);
  InputConfig cfg;
  InputEncoder enc(&f.tokenizer, cfg);
  EncodedMetadata em = enc.EncodeMetadata(meta);
  // All-empty column: content segment should be anchor + all PAD.
  std::map<int, std::vector<std::string>> content;
  content[0] = {"", "", ""};
  EncodedContent ec = enc.EncodeContent(em, content);
  for (size_t i = 1; i < ec.token_ids.size(); ++i) {
    EXPECT_EQ(ec.token_ids[i], text::Vocab::kPadId);
  }
}

TEST(EncodingTest, CrossMaskSeparatesColumns) {
  // Content token of column A must not attend content tokens of column B,
  // but must attend all (non-pad) metadata tokens.
  Fixture f = Fixture::Make();
  clouddb::TableMetadata meta = FirstTableMeta(f);
  if (meta.columns.size() < 2) GTEST_SKIP();
  InputConfig cfg;
  InputEncoder enc(&f.tokenizer, cfg);
  EncodedMetadata em = enc.EncodeMetadata(meta);
  std::map<int, std::vector<std::string>> content;
  content[0] = {"london"};
  content[1] = {"paris"};
  EncodedContent ec = enc.EncodeContent(em, content);
  int64_t sm = static_cast<int64_t>(em.token_ids.size());
  int64_t skv = ec.cross_mask.dim(1);
  int seg = 1 + cfg.cells_per_column * cfg.cell_tokens;
  // Query 0 is column 0's anchor; content keys of column 1 occupy
  // positions [sm + seg, sm + 2*seg).
  const float* row0 = ec.cross_mask.data();
  for (int64_t k = sm + seg; k < std::min<int64_t>(skv, sm + 2 * seg); ++k) {
    EXPECT_LT(row0[k], -1e8f);
  }
  // Metadata anchor of column 1 is attendable from column 0's queries.
  EXPECT_EQ(row0[em.column_anchors[1]], 0.0f);
}

// ---- ADTD forward ------------------------------------------------------------------

struct ModelFixture {
  Fixture f;
  AdtdConfig cfg;
  std::unique_ptr<AdtdModel> model;
  std::unique_ptr<InputEncoder> encoder;

  static ModelFixture Make() {
    ModelFixture m{Fixture::Make(), {}, nullptr, nullptr};
    m.cfg = AdtdConfig::Tiny(m.f.tokenizer.vocab().size(),
                             data::SemanticTypeRegistry::Default().size());
    Rng rng(99);
    m.model = std::make_unique<AdtdModel>(m.cfg, rng);
    m.encoder = std::make_unique<InputEncoder>(&m.f.tokenizer, m.cfg.input);
    return m;
  }
};

TEST(AdtdTest, ParameterSharingBetweenTowers) {
  // There is exactly one encoder stack; "two towers" are dataflows. Verify
  // the parameter count matches one encoder + embeddings + two heads.
  ModelFixture m = ModelFixture::Make();
  Rng rng(1);
  nn::TransformerEncoder lone(m.cfg.encoder, rng);
  int64_t total = m.model->ParameterCount();
  // Must be far less than two encoders' worth.
  EXPECT_LT(total, 2 * lone.ParameterCount() +
                       m.cfg.vocab_size * m.cfg.encoder.hidden * 2);
}

TEST(AdtdTest, MetadataForwardShapes) {
  ModelFixture m = ModelFixture::Make();
  clouddb::TableMetadata meta = FirstTableMeta(m.f);
  EncodedMetadata em = m.encoder->EncodeMetadata(meta);
  tensor::NoGradGuard ng;
  auto out = m.model->ForwardMetadata(em);
  int64_t ncols = em.num_columns;
  EXPECT_EQ(out.logits.shape(), (Shape{ncols, m.cfg.num_types}));
  EXPECT_EQ(out.anchor_states.shape(), (Shape{ncols, m.cfg.encoder.hidden}));
  EXPECT_EQ(static_cast<int64_t>(out.layer_latents.size()),
            m.cfg.encoder.num_layers + 1);
}

TEST(AdtdTest, ContentForwardShapes) {
  ModelFixture m = ModelFixture::Make();
  clouddb::TableMetadata meta = FirstTableMeta(m.f);
  EncodedMetadata em = m.encoder->EncodeMetadata(meta);
  std::map<int, std::vector<std::string>> content;
  content[0] = {"x", "y"};
  EncodedContent ec = m.encoder->EncodeContent(em, content);
  tensor::NoGradGuard ng;
  auto menc = m.model->ForwardMetadata(em);
  Tensor logits = m.model->ForwardContent(ec, em, menc);
  EXPECT_EQ(logits.shape(), (Shape{1, m.cfg.num_types}));
}

TEST(AdtdTest, DeterministicInference) {
  ModelFixture m = ModelFixture::Make();
  clouddb::TableMetadata meta = FirstTableMeta(m.f);
  EncodedMetadata em = m.encoder->EncodeMetadata(meta);
  tensor::NoGradGuard ng;
  auto a = m.model->ForwardMetadata(em);
  auto b = m.model->ForwardMetadata(em);
  for (int64_t i = 0; i < a.logits.numel(); ++i) {
    EXPECT_EQ(a.logits.data()[i], b.logits.data()[i]);
  }
}

TEST(AdtdTest, ContentOfOtherColumnDoesNotLeak) {
  // The structured cross mask means column 0's P2 logits are invariant to
  // column 1's scanned values.
  ModelFixture m = ModelFixture::Make();
  clouddb::TableMetadata meta = FirstTableMeta(m.f);
  if (meta.columns.size() < 2) GTEST_SKIP();
  EncodedMetadata em = m.encoder->EncodeMetadata(meta);
  tensor::NoGradGuard ng;
  auto menc = m.model->ForwardMetadata(em);
  std::map<int, std::vector<std::string>> c1;
  c1[0] = {"london", "paris"};
  c1[1] = {"100", "200"};
  std::map<int, std::vector<std::string>> c2 = c1;
  c2[1] = {"totally", "different"};
  Tensor l1 = m.model->ForwardContent(m.encoder->EncodeContent(em, c1), em,
                                      menc);
  Tensor l2 = m.model->ForwardContent(m.encoder->EncodeContent(em, c2), em,
                                      menc);
  // Row 0 (column 0) identical; row 1 (column 1) differs.
  float diff0 = 0, diff1 = 0;
  for (int64_t j = 0; j < m.cfg.num_types; ++j) {
    diff0 += std::abs(l1.data()[j] - l2.data()[j]);
    diff1 += std::abs(l1.data()[m.cfg.num_types + j] -
                      l2.data()[m.cfg.num_types + j]);
  }
  EXPECT_LT(diff0, 1e-3f);
  EXPECT_GT(diff1, 1e-4f);
}

TEST(AdtdTest, OwnContentInfluencesPrediction) {
  ModelFixture m = ModelFixture::Make();
  clouddb::TableMetadata meta = FirstTableMeta(m.f);
  EncodedMetadata em = m.encoder->EncodeMetadata(meta);
  tensor::NoGradGuard ng;
  auto menc = m.model->ForwardMetadata(em);
  std::map<int, std::vector<std::string>> c1, c2;
  c1[0] = {"london"};
  c2[0] = {"4111 1111 1111 1111"};
  Tensor l1 = m.model->ForwardContent(m.encoder->EncodeContent(em, c1), em,
                                      menc);
  Tensor l2 = m.model->ForwardContent(m.encoder->EncodeContent(em, c2), em,
                                      menc);
  float diff = 0;
  for (int64_t j = 0; j < m.cfg.num_types; ++j) {
    diff += std::abs(l1.data()[j] - l2.data()[j]);
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(AdtdTest, MlmLogitsShape) {
  ModelFixture m = ModelFixture::Make();
  tensor::NoGradGuard ng;
  Tensor logits = m.model->MlmLogits({2, 5, 6, 7});
  EXPECT_EQ(logits.shape(), (Shape{4, m.cfg.vocab_size}));
}

TEST(AdtdTest, LossWeightsStartAtOne) {
  ModelFixture m = ModelFixture::Make();
  auto [w1, w2] = m.model->loss_weights();
  EXPECT_EQ(w1, 1.0f);
  EXPECT_EQ(w2, 1.0f);
}

TEST(AdtdTest, MultiTaskLossIsFiniteAndPositive) {
  ModelFixture m = ModelFixture::Make();
  clouddb::TableMetadata meta = FirstTableMeta(m.f);
  EncodedMetadata em = m.encoder->EncodeMetadata(meta);
  std::map<int, std::vector<std::string>> content;
  content[0] = {"x"};
  EncodedContent ec = m.encoder->EncodeContent(em, content);
  auto menc = m.model->ForwardMetadata(em);
  Tensor cont = m.model->ForwardContent(ec, em, menc);
  Tensor targets = BuildTargets(
      std::vector<std::vector<int>>(static_cast<size_t>(em.num_columns), {0}),
      m.cfg.num_types);
  Tensor ct = tensor::GatherRows(targets, ec.scanned);
  Tensor loss = m.model->MultiTaskLoss(menc.logits, targets, cont, ct);
  EXPECT_TRUE(std::isfinite(loss.item()));
  EXPECT_GT(loss.item(), 0.0f);
}

TEST(AdtdTest, PaperConfigConstructs) {
  AdtdConfig cfg = AdtdConfig::Paper(1000, 255);
  EXPECT_EQ(cfg.encoder.hidden, 312);
  EXPECT_EQ(cfg.encoder.num_layers, 4);
  EXPECT_EQ(cfg.meta_classifier_hidden, 500);
  EXPECT_EQ(cfg.content_classifier_hidden, 1000);
  EXPECT_EQ(cfg.input.table_tokens, 150);
  Rng rng(3);
  AdtdModel model(cfg, rng);
  // ~14.5M parameters reported by the paper for this scale.
  EXPECT_GT(model.ParameterCount(), 5'000'000);
  EXPECT_LT(model.ParameterCount(), 20'000'000);
}

TEST(BuildTargetsTest, MultiHot) {
  Tensor t = BuildTargets({{0, 2}, {1}}, 3);
  EXPECT_EQ(t.shape(), (Shape{2, 3}));
  EXPECT_EQ(t.data()[0], 1.0f);
  EXPECT_EQ(t.data()[1], 0.0f);
  EXPECT_EQ(t.data()[2], 1.0f);
  EXPECT_EQ(t.data()[4], 1.0f);
}

// ---- latent cache -------------------------------------------------------------------

TEST(LatentCacheTest, PutGetRoundTrip) {
  LatentCache cache(4);
  CachedMetadata cm;
  cm.input.table_name = "t";
  cache.Put("t#0", cm);
  auto got = cache.Get("t#0");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->input.table_name, "t");
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_FALSE(cache.Get("missing").has_value());
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(LatentCacheTest, EvictsLeastRecentlyUsed) {
  LatentCache cache(2);
  cache.Put("a", {});
  cache.Put("b", {});
  (void)cache.Get("a");   // refresh a
  cache.Put("c", {});     // evicts b
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(LatentCacheTest, ClearEmpties) {
  LatentCache cache(4);
  cache.Put("a", {});
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get("a").has_value());
}

TEST(LatentCacheTest, CachedLatentsGiveIdenticalContentLogits) {
  // The headline property (paper Sec. 4.2.2): running P2 from cached
  // latents is exact, not approximate.
  ModelFixture m = ModelFixture::Make();
  clouddb::TableMetadata meta = FirstTableMeta(m.f);
  EncodedMetadata em = m.encoder->EncodeMetadata(meta);
  tensor::NoGradGuard ng;
  LatentCache cache(8);
  {
    auto menc = m.model->ForwardMetadata(em);
    cache.Put("k", {em, menc});
  }
  auto cached = cache.Get("k");
  ASSERT_TRUE(cached.has_value());
  std::map<int, std::vector<std::string>> content;
  content[0] = {"42"};
  EncodedContent ec = m.encoder->EncodeContent(em, content);
  Tensor from_cache =
      m.model->ForwardContent(ec, cached->input, cached->encoding);
  auto fresh = m.model->ForwardMetadata(em);
  Tensor recomputed = m.model->ForwardContent(ec, em, fresh);
  for (int64_t i = 0; i < from_cache.numel(); ++i) {
    EXPECT_EQ(from_cache.data()[i], recomputed.data()[i]);
  }
}

// ---- training ------------------------------------------------------------------------

TEST(TrainerTest, MlmLossDecreases) {
  Fixture f = Fixture::Make(20);
  AdtdConfig cfg = AdtdConfig::Tiny(f.tokenizer.vocab().size(),
                                    data::SemanticTypeRegistry::Default().size());
  Rng rng(5);
  AdtdModel model(cfg, rng);
  auto docs = data::BuildCorpusDocuments(f.dataset);
  PretrainOptions opt;
  opt.epochs = 1;
  opt.max_seq_len = 48;
  auto first = PretrainMlm(&model, docs, f.tokenizer, opt);
  ASSERT_TRUE(first.ok());
  opt.epochs = 3;
  auto later = PretrainMlm(&model, docs, f.tokenizer, opt);
  ASSERT_TRUE(later.ok());
  EXPECT_LT(*later, *first);
}

TEST(TrainerTest, MlmRejectsEmptyCorpus) {
  Fixture f = Fixture::Make(6);
  AdtdConfig cfg = AdtdConfig::Tiny(f.tokenizer.vocab().size(), 10);
  Rng rng(6);
  AdtdModel model(cfg, rng);
  auto res = PretrainMlm(&model, {}, f.tokenizer, {});
  EXPECT_FALSE(res.ok());
}

TEST(TrainerTest, FineTuneLossDecreases) {
  Fixture f = Fixture::Make(16);
  AdtdConfig cfg = AdtdConfig::Tiny(f.tokenizer.vocab().size(),
                                    data::SemanticTypeRegistry::Default().size());
  Rng rng(7);
  AdtdModel model(cfg, rng);
  FineTuner tuner(&model, &f.tokenizer);
  std::vector<int> idx;
  for (int i = 0; i < static_cast<int>(f.dataset.tables.size()); ++i) {
    idx.push_back(i);
  }
  FineTuneOptions opt;
  opt.epochs = 1;
  auto first = tuner.Train(f.dataset, idx, opt);
  ASSERT_TRUE(first.ok());
  opt.epochs = 4;
  auto later = tuner.Train(f.dataset, idx, opt);
  ASSERT_TRUE(later.ok());
  EXPECT_LT(*later, *first);
}

TEST(TrainerTest, FineTuneRejectsEmptyIndices) {
  Fixture f = Fixture::Make(6);
  AdtdConfig cfg = AdtdConfig::Tiny(f.tokenizer.vocab().size(), 10);
  Rng rng(8);
  AdtdModel model(cfg, rng);
  FineTuner tuner(&model, &f.tokenizer);
  EXPECT_FALSE(tuner.Train(f.dataset, {}, {}).ok());
}

TEST(TrainerTest, LossWeightsAdaptDuringTraining) {
  Fixture f = Fixture::Make(10);
  AdtdConfig cfg = AdtdConfig::Tiny(f.tokenizer.vocab().size(),
                                    data::SemanticTypeRegistry::Default().size());
  Rng rng(9);
  AdtdModel model(cfg, rng);
  FineTuner tuner(&model, &f.tokenizer);
  std::vector<int> idx;
  for (int i = 0; i < static_cast<int>(f.dataset.tables.size()); ++i) {
    idx.push_back(i);
  }
  FineTuneOptions opt;
  opt.epochs = 2;
  ASSERT_TRUE(tuner.Train(f.dataset, idx, opt).ok());
  auto [w1, w2] = model.loss_weights();
  EXPECT_TRUE(w1 != 1.0f || w2 != 1.0f);
}

}  // namespace
}  // namespace taste::model
