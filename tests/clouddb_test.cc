// Tests for the simulated cloud database: ingest, metadata correctness,
// scans (first-m and sampled), histograms, cost accounting, thread safety.

#include <thread>

#include <gtest/gtest.h>

#include "clouddb/database.h"
#include "data/table_generator.h"

namespace taste::clouddb {
namespace {

data::TableSpec MakeTable() {
  data::TableSpec t;
  t.name = "customers";
  t.comment = "customer master data";
  t.num_rows = 6;
  data::ColumnSpec email;
  email.name = "email";
  email.comment = "contact email";
  email.sql_type = "varchar(255)";
  email.values = {"a@x.com", "b@x.com", "c@y.org", "", "a@x.com", "d@z.net"};
  email.labels = {0};
  data::ColumnSpec age;
  age.name = "age";
  age.sql_type = "int";
  age.values = {"20", "30", "40", "50", "30", "20"};
  age.labels = {1};
  t.columns = {email, age};
  return t;
}

CostModel FastCost() {
  CostModel c;
  c.time_scale = 0.0;  // deterministic: no sleeping
  return c;
}

TEST(DatabaseTest, CreateAndListTables) {
  SimulatedDatabase db(FastCost());
  ASSERT_TRUE(db.CreateTable(MakeTable()).ok());
  auto conn = db.Connect();
  auto tables = conn->ListTables();
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0], "customers");
  EXPECT_EQ(db.num_tables(), 1);
}

TEST(DatabaseTest, DuplicateCreateRejected) {
  SimulatedDatabase db(FastCost());
  ASSERT_TRUE(db.CreateTable(MakeTable()).ok());
  Status st = db.CreateTable(MakeTable());
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, MetadataCarriesSchemaAndStats) {
  SimulatedDatabase db(FastCost());
  ASSERT_TRUE(db.CreateTable(MakeTable()).ok());
  auto conn = db.Connect();
  auto meta = conn->GetTableMetadata("customers");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->table_name, "customers");
  EXPECT_EQ(meta->comment, "customer master data");
  EXPECT_EQ(meta->num_rows, 6);
  ASSERT_EQ(meta->columns.size(), 2u);
  const ColumnMetadata& email = meta->columns[0];
  EXPECT_EQ(email.column_name, "email");
  EXPECT_EQ(email.data_type, "varchar(255)");
  EXPECT_EQ(email.comment, "contact email");
  EXPECT_EQ(email.num_distinct, 4);  // a,b,c,d (empty skipped)
  EXPECT_NEAR(email.null_fraction, 1.0 / 6, 1e-9);
  EXPECT_EQ(email.min_value, "a@x.com");
  EXPECT_EQ(email.max_value, "d@z.net");
  EXPECT_FALSE(email.histogram.has_value());  // before ANALYZE
  EXPECT_EQ(meta->columns[1].ordinal, 1);
}

TEST(DatabaseTest, MetadataNeverExposesLabels) {
  // Compile-time-ish check: ColumnMetadata has no labels member; verify the
  // visible surface carries only schema/statistics strings.
  SimulatedDatabase db(FastCost());
  ASSERT_TRUE(db.CreateTable(MakeTable()).ok());
  auto meta = db.Connect()->GetTableMetadata("customers");
  ASSERT_TRUE(meta.ok());
  // Nothing in the metadata should equal a label id rendered as content.
  SUCCEED();
}

TEST(DatabaseTest, UnknownTableIsNotFound) {
  SimulatedDatabase db(FastCost());
  auto conn = db.Connect();
  EXPECT_EQ(conn->GetTableMetadata("nope").status().code(),
            StatusCode::kNotFound);
}

TEST(ScanTest, FirstMRowsReturnsPrefix) {
  SimulatedDatabase db(FastCost());
  ASSERT_TRUE(db.CreateTable(MakeTable()).ok());
  auto conn = db.Connect();
  auto res = conn->ScanColumns("customers", {"age"}, {.limit_rows = 3});
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 1u);
  EXPECT_EQ((*res)[0], (std::vector<std::string>{"20", "30", "40"}));
}

TEST(ScanTest, LimitLargerThanTableClamps) {
  SimulatedDatabase db(FastCost());
  ASSERT_TRUE(db.CreateTable(MakeTable()).ok());
  auto conn = db.Connect();
  auto res = conn->ScanColumns("customers", {"email"}, {.limit_rows = 100});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ((*res)[0].size(), 6u);
}

TEST(ScanTest, MultipleColumnsPreserveRequestOrder) {
  SimulatedDatabase db(FastCost());
  ASSERT_TRUE(db.CreateTable(MakeTable()).ok());
  auto conn = db.Connect();
  auto res =
      conn->ScanColumns("customers", {"age", "email"}, {.limit_rows = 2});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ((*res)[0][0], "20");
  EXPECT_EQ((*res)[1][0], "a@x.com");
}

TEST(ScanTest, RandomSampleIsDeterministicPerSeed) {
  SimulatedDatabase db(FastCost());
  ASSERT_TRUE(db.CreateTable(MakeTable()).ok());
  auto conn = db.Connect();
  ScanOptions opt{.limit_rows = 4, .random_sample = true, .sample_seed = 7};
  auto a = conn->ScanColumns("customers", {"age"}, opt);
  auto b = conn->ScanColumns("customers", {"age"}, opt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)[0], (*b)[0]);
}

TEST(ScanTest, RandomSampleRowsAlignAcrossColumns) {
  SimulatedDatabase db(FastCost());
  ASSERT_TRUE(db.CreateTable(MakeTable()).ok());
  auto conn = db.Connect();
  ScanOptions opt{.limit_rows = 6, .random_sample = true, .sample_seed = 3};
  auto res = conn->ScanColumns("customers", {"age", "email"}, opt);
  ASSERT_TRUE(res.ok());
  // Row alignment: the permutation must be shared between columns. Check by
  // locating a distinctive pair from the original table.
  const auto& ages = (*res)[0];
  const auto& emails = (*res)[1];
  for (size_t i = 0; i < ages.size(); ++i) {
    if (ages[i] == "40") EXPECT_EQ(emails[i], "c@y.org");
    if (ages[i] == "50") EXPECT_EQ(emails[i], "");
  }
}

TEST(ScanTest, UnknownColumnIsNotFound) {
  SimulatedDatabase db(FastCost());
  ASSERT_TRUE(db.CreateTable(MakeTable()).ok());
  auto conn = db.Connect();
  auto res = conn->ScanColumns("customers", {"ghost"}, {.limit_rows = 2});
  EXPECT_EQ(res.status().code(), StatusCode::kNotFound);
}

TEST(ScanTest, NonPositiveLimitRejected) {
  SimulatedDatabase db(FastCost());
  ASSERT_TRUE(db.CreateTable(MakeTable()).ok());
  auto conn = db.Connect();
  auto res = conn->ScanColumns("customers", {"age"}, {.limit_rows = 0});
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST(AnalyzeTest, HistogramAppearsAfterAnalyze) {
  SimulatedDatabase db(FastCost());
  ASSERT_TRUE(db.CreateTable(MakeTable()).ok());
  ASSERT_TRUE(db.AnalyzeTable("customers").ok());
  auto meta = db.Connect()->GetTableMetadata("customers");
  ASSERT_TRUE(meta.ok());
  ASSERT_TRUE(meta->columns[1].histogram.has_value());
  const Histogram& h = *meta->columns[1].histogram;
  EXPECT_EQ(h.kind, Histogram::Kind::kEquiWidth);  // "age" is numeric
  ASSERT_TRUE(meta->columns[0].histogram.has_value());
  EXPECT_EQ(meta->columns[0].histogram->kind, Histogram::Kind::kTopValues);
}

TEST(AnalyzeTest, UnknownTableFails) {
  SimulatedDatabase db(FastCost());
  EXPECT_EQ(db.AnalyzeTable("nope").code(), StatusCode::kNotFound);
}

TEST(HistogramTest, NumericBucketsSumToOne) {
  Histogram h = BuildHistogram({"1", "2", "3", "4", "10"}, 4);
  EXPECT_EQ(h.kind, Histogram::Kind::kEquiWidth);
  double sum = 0;
  for (double f : h.frequencies) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(h.bounds.size(), 5u);
  EXPECT_EQ(h.bounds.front(), 1.0);
  EXPECT_EQ(h.bounds.back(), 10.0);
}

TEST(HistogramTest, CategoricalTopValuesSorted) {
  Histogram h =
      BuildHistogram({"red", "red", "red", "blue", "blue", "green"}, 2);
  EXPECT_EQ(h.kind, Histogram::Kind::kTopValues);
  ASSERT_EQ(h.top_values.size(), 2u);
  EXPECT_EQ(h.top_values[0].first, "red");
  EXPECT_NEAR(h.top_values[0].second, 0.5, 1e-9);
  EXPECT_EQ(h.top_values[1].first, "blue");
}

TEST(HistogramTest, EmptyValuesYieldEmptyHistogram) {
  Histogram h = BuildHistogram({"", "", ""});
  EXPECT_TRUE(h.frequencies.empty());
  EXPECT_TRUE(h.top_values.empty());
}

TEST(HistogramTest, SinglePointNumericDoesNotDivideByZero) {
  Histogram h = BuildHistogram({"5", "5", "5"}, 4);
  EXPECT_EQ(h.kind, Histogram::Kind::kEquiWidth);
  double sum = 0;
  for (double f : h.frequencies) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(HistogramTest, MostlyNumericThreshold) {
  EXPECT_TRUE(MostlyNumeric({"1", "2", "3", "4", "x"}, 0.8));
  EXPECT_FALSE(MostlyNumeric({"1", "2", "x", "y", "z"}, 0.8));
  EXPECT_FALSE(MostlyNumeric({}));
}

TEST(LedgerTest, CountsConnectionsQueriesAndScans) {
  SimulatedDatabase db(FastCost());
  ASSERT_TRUE(db.CreateTable(MakeTable()).ok());
  auto conn = db.Connect();
  (void)conn->GetTableMetadata("customers");
  (void)conn->ScanColumns("customers", {"age", "email"}, {.limit_rows = 3});
  auto snap = db.ledger().snapshot();
  EXPECT_EQ(snap.connections, 1);
  EXPECT_EQ(snap.queries, 2);
  EXPECT_EQ(snap.metadata_columns, 2);
  EXPECT_EQ(snap.scanned_columns, 2);
  EXPECT_EQ(snap.scanned_cells, 6);
  EXPECT_GT(snap.scanned_bytes, 0);
  EXPECT_GT(snap.simulated_io_ms, 0.0);
}

TEST(LedgerTest, ResetClears) {
  SimulatedDatabase db(FastCost());
  ASSERT_TRUE(db.CreateTable(MakeTable()).ok());
  (void)db.Connect();
  db.ledger().Reset();
  auto snap = db.ledger().snapshot();
  EXPECT_EQ(snap.connections, 0);
  EXPECT_EQ(snap.simulated_io_ms, 0.0);
}

TEST(LedgerTest, ScanCostExceedsMetadataCost) {
  // The premise of the whole paper: metadata is much cheaper than content.
  SimulatedDatabase db(FastCost());
  data::Dataset ds = data::GenerateDataset(data::DatasetProfile::WikiLike(5));
  ASSERT_TRUE(db.IngestDataset(ds).ok());
  auto conn = db.Connect();
  db.ledger().Reset();
  for (const auto& t : ds.tables) {
    (void)conn->GetTableMetadata(t.name);
  }
  double meta_ms = db.ledger().snapshot().simulated_io_ms;
  db.ledger().Reset();
  for (const auto& t : ds.tables) {
    std::vector<std::string> cols;
    for (const auto& c : t.columns) cols.push_back(c.name);
    (void)conn->ScanColumns(t.name, cols, {.limit_rows = 50});
  }
  double scan_ms = db.ledger().snapshot().simulated_io_ms;
  EXPECT_GT(scan_ms, meta_ms * 1.5);
}

TEST(ConcurrencyTest, ParallelConnectionsAreSafe) {
  SimulatedDatabase db(FastCost());
  data::Dataset ds = data::GenerateDataset(data::DatasetProfile::GitLike(20));
  ASSERT_TRUE(db.IngestDataset(ds).ok());
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&db, &ds, &errors] {
      auto conn = db.Connect();
      for (const auto& table : ds.tables) {
        auto meta = conn->GetTableMetadata(table.name);
        if (!meta.ok()) ++errors;
        std::vector<std::string> cols = {table.columns[0].name};
        auto scan = conn->ScanColumns(table.name, cols, {.limit_rows = 5});
        if (!scan.ok()) ++errors;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(db.ledger().snapshot().connections, 4);
}

TEST(IngestTest, DatasetWithHistograms) {
  SimulatedDatabase db(FastCost());
  data::Dataset ds = data::GenerateDataset(data::DatasetProfile::WikiLike(5));
  ASSERT_TRUE(db.IngestDataset(ds, /*with_histograms=*/true).ok());
  auto conn = db.Connect();
  auto meta = conn->GetTableMetadata(ds.tables[0].name);
  ASSERT_TRUE(meta.ok());
  for (const auto& c : meta->columns) {
    EXPECT_TRUE(c.histogram.has_value());
  }
  EXPECT_EQ(db.ledger().snapshot().analyzed_tables, 5);
}

TEST(TimingTest, TimeScaleActuallyBlocks) {
  CostModel cost;
  cost.connect_ms = 30.0;
  cost.time_scale = 1.0;
  SimulatedDatabase db(cost);
  auto start = std::chrono::steady_clock::now();
  (void)db.Connect();
  double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed_ms, 25.0);
}

}  // namespace
}  // namespace taste::clouddb
