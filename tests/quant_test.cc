// Math and determinism suite for the int8 quantization layer
// (tensor/quant.h) and its ops/nn integration.
//
// The contract under test (DESIGN.md §12):
//   * per-channel symmetric weight quantization round-trips within half a
//     quantization step, with exact edge behaviour for all-zero channels
//     and k=1 (the k-pad path);
//   * int32 accumulation is exact at the paper's largest depth (k = 1200),
//     verified against an int64 reference over the unpacked panels;
//   * every compiled kernel flavour (portable / SSE4.1 / AVX2) produces
//     BYTE-identical fp32 outputs — the serving tier's int8 determinism
//     rests on this, so it is fuzzed across 50 seeds of random shapes;
//   * outputs are independent of batch composition and of the intra-op
//     pool, byte for byte, like the fp32 kernels (tests/kernels_test.cc);
//   * the nn::Linear gate only takes the int8 path inside an int8
//     ExecContext quant region with gradients off.

#include "tensor/quant.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/layers.h"
#include "tensor/exec_context.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace taste::tensor::quant {
namespace {

std::vector<float> RandomVec(int64_t n, Rng& rng, float scale = 1.0f) {
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.NextGaussian()) * scale;
  return v;
}

/// Recovers q[i][j] from the interleaved panels (layout note in quant.h):
/// column block b, k-pair p, the 16 bytes are (q[2p,j], q[2p+1,j]) for the
/// block's 8 columns in order.
int8_t UnpackedAt(const PackedQuantWeight& w, int64_t i, int64_t j) {
  const int64_t b = j / kQuantNr;
  const int64_t jc = j % kQuantNr;
  const int64_t p = i / 2;
  const int64_t pairs = w.k_pad / 2;
  const int64_t base = (b * pairs + p) * 2 * kQuantNr;
  return w.packed[static_cast<size_t>(base + 2 * jc + (i & 1))];
}

TEST(QuantPackTest, RoundTripWithinHalfStep) {
  Rng rng(7);
  const int64_t k = 37, n = 21;
  std::vector<float> w = RandomVec(k * n, rng);
  PackedQuantWeight packed = PackWeightPerChannel(w.data(), k, n);
  ASSERT_EQ(packed.rows, k);
  ASSERT_EQ(packed.cols, n);
  ASSERT_EQ(packed.k_pad, PaddedK(k));
  ASSERT_EQ(static_cast<int64_t>(packed.scales.size()), n);
  for (int64_t j = 0; j < n; ++j) {
    const float scale = packed.scales[j];
    ASSERT_GT(scale, 0.0f);
    for (int64_t i = 0; i < k; ++i) {
      const float dequant = static_cast<float>(UnpackedAt(packed, i, j)) * scale;
      // Symmetric round-to-nearest: error bounded by half a step.
      EXPECT_NEAR(w[static_cast<size_t>(i * n + j)], dequant,
                  scale * 0.5f + 1e-7f)
          << "i=" << i << " j=" << j;
    }
  }
  // Padded k rows must be exact zeros (they contribute to every dot).
  for (int64_t i = k; i < packed.k_pad; ++i) {
    for (int64_t j = 0; j < n; ++j) EXPECT_EQ(UnpackedAt(packed, i, j), 0);
  }
}

TEST(QuantPackTest, AllZeroChannelHasZeroScaleAndZeroOutput) {
  Rng rng(11);
  const int64_t k = 16, n = 9;
  std::vector<float> w = RandomVec(k * n, rng);
  for (int64_t i = 0; i < k; ++i) w[static_cast<size_t>(i * n + 4)] = 0.0f;
  PackedQuantWeight packed = PackWeightPerChannel(w.data(), k, n);
  EXPECT_EQ(packed.scales[4], 0.0f);
  for (int64_t i = 0; i < k; ++i) EXPECT_EQ(UnpackedAt(packed, i, 4), 0);

  const int64_t m = 3;
  std::vector<float> x = RandomVec(m * k, rng);
  std::vector<float> c(static_cast<size_t>(m * n), -1.0f);
  QuantLinearForward(x.data(), m, packed, /*bias=*/nullptr, c.data(), nullptr);
  for (int64_t r = 0; r < m; ++r) {
    EXPECT_EQ(c[static_cast<size_t>(r * n + 4)], 0.0f);
  }
}

TEST(QuantPackTest, SingleElementChannelAndKOne) {
  // k = 1 exercises the k-pad path: one real row plus one zero pad row.
  const int64_t k = 1, n = 3;
  const float w[] = {0.5f, -2.0f, 0.0f};
  PackedQuantWeight packed = PackWeightPerChannel(w, k, n);
  EXPECT_EQ(packed.k_pad, 2);
  EXPECT_FLOAT_EQ(packed.scales[0], 0.5f / 127.0f);
  EXPECT_FLOAT_EQ(packed.scales[1], 2.0f / 127.0f);
  EXPECT_EQ(packed.scales[2], 0.0f);
  EXPECT_EQ(UnpackedAt(packed, 0, 0), 127);
  EXPECT_EQ(UnpackedAt(packed, 0, 1), -127);
  EXPECT_EQ(UnpackedAt(packed, 0, 2), 0);

  // A 1x1 forward through the padded pair stays exact for representable
  // values (q = ±127 round-trips to the stored scale times ±127).
  const float x = 3.0f;
  float c[3] = {0, 0, 0};
  QuantLinearForward(&x, 1, packed, nullptr, c, nullptr);
  EXPECT_NEAR(c[0], 1.5f, 1.5f * 0.02f);
  EXPECT_NEAR(c[1], -6.0f, 6.0f * 0.02f);
  EXPECT_EQ(c[2], 0.0f);
}

TEST(QuantActivationTest, PerRowScalesAndZeroRow) {
  const int64_t m = 2, k = 3;
  const float x[] = {1.0f, -4.0f, 2.0f, 0.0f, 0.0f, 0.0f};
  std::vector<int16_t> q(static_cast<size_t>(m * PaddedK(k)), 99);
  std::vector<float> scales(static_cast<size_t>(m), -1.0f);
  QuantizeActivationRows(x, m, k, q.data(), scales.data());
  EXPECT_FLOAT_EQ(scales[0], 4.0f / 127.0f);
  EXPECT_EQ(q[1], -127);  // the row max hits the full range
  // A zero row must quantize to zeros with a harmless scale (no div-by-0).
  EXPECT_EQ(q[static_cast<size_t>(PaddedK(k))], 0);
  EXPECT_GT(scales[1], 0.0f);
  // Pad entries are zero.
  EXPECT_EQ(q[3], 0);
}

// Int32 accumulation is exact at the paper's largest depth: drive k = 1200
// with extreme-magnitude inputs (every quantized value at ±127) and check
// each kernel's accumulator against an int64 reference over the unpacked
// panels. 1200 * 127 * 127 = 19354800 fits int32 with 100x headroom, but a
// 16-bit intermediate would have wrapped — this is the regression test for
// the madd-idiom's widening.
TEST(QuantGemmTest, Int32ExactAtPaperDepthExtremes) {
  const int64_t m = 3, k = 1200, n = 17;
  Rng rng(23);
  std::vector<float> w(static_cast<size_t>(k * n));
  std::vector<float> x(static_cast<size_t>(m * k));
  for (auto& v : w) v = (rng.NextU64() & 1) ? 1.0f : -1.0f;  // q = ±127
  for (auto& v : x) v = (rng.NextU64() & 1) ? 1.0f : -1.0f;
  PackedQuantWeight packed = PackWeightPerChannel(w.data(), k, n);

  std::vector<int16_t> qa(static_cast<size_t>(m * packed.k_pad));
  std::vector<float> a_scales(static_cast<size_t>(m));
  QuantizeActivationRows(x.data(), m, k, qa.data(), a_scales.data());

  for (QuantKernel kern :
       {QuantKernel::kPortable, QuantKernel::kSse41, QuantKernel::kAvx2,
        QuantKernel::kAvx512}) {
    if (!QuantKernelAvailable(kern)) continue;
    std::vector<float> c(static_cast<size_t>(m * n));
    QuantGemm(qa.data(), a_scales.data(), packed, nullptr, c.data(), m,
              nullptr, kern);
    for (int64_t r = 0; r < m; ++r) {
      for (int64_t j = 0; j < n; ++j) {
        int64_t acc = 0;
        for (int64_t i = 0; i < packed.k_pad; ++i) {
          acc += static_cast<int64_t>(qa[static_cast<size_t>(
                     r * packed.k_pad + i)]) *
                 static_cast<int64_t>(UnpackedAt(packed, i, j));
        }
        ASSERT_LT(std::abs(acc), int64_t{1} << 31);
        const float want = static_cast<float>(acc) *
                           (a_scales[static_cast<size_t>(r)] *
                            packed.scales[static_cast<size_t>(j)]);
        ASSERT_EQ(c[static_cast<size_t>(r * n + j)], want)
            << QuantKernelName(kern) << " r=" << r << " j=" << j;
      }
    }
  }
}

// The determinism keystone: every compiled flavour must produce the same
// fp32 bytes for random shapes covering the block/pad boundaries. 50 seeds
// of random (m, k, n) — including k > 1200 and sub-block n — memcmp'd
// against the portable kernel.
TEST(QuantGemmTest, KernelFlavoursByteIdenticalAcross50Seeds) {
  if (BestQuantKernel() == QuantKernel::kPortable) {
    GTEST_SKIP() << "no SIMD flavour compiled in";
  }
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed * 2654435761u);
    const int64_t m = 1 + static_cast<int64_t>(rng.NextU64() % 40);
    const int64_t k = 1 + static_cast<int64_t>(rng.NextU64() % 1300);
    const int64_t n = 1 + static_cast<int64_t>(rng.NextU64() % 70);
    std::vector<float> w = RandomVec(k * n, rng);
    std::vector<float> x = RandomVec(m * k, rng, 3.0f);
    PackedQuantWeight packed = PackWeightPerChannel(w.data(), k, n);
    std::vector<float> bias = RandomVec(n, rng);

    std::vector<float> base(static_cast<size_t>(m * n));
    QuantLinearForward(x.data(), m, packed, bias.data(), base.data(), nullptr,
                       QuantKernel::kPortable);
    for (QuantKernel kern : {QuantKernel::kSse41, QuantKernel::kAvx2,
                             QuantKernel::kAvx512}) {
      if (!QuantKernelAvailable(kern)) continue;
      std::vector<float> got(static_cast<size_t>(m * n), -7.0f);
      QuantLinearForward(x.data(), m, packed, bias.data(), got.data(),
                         nullptr, kern);
      ASSERT_EQ(0, std::memcmp(base.data(), got.data(),
                               base.size() * sizeof(float)))
          << "seed=" << seed << " kernel=" << QuantKernelName(kern)
          << " m=" << m << " k=" << k << " n=" << n;
    }
  }
}

// Row-stability + pool independence: row r of a batched forward is byte
// identical to a single-row forward of the same row, with or without an
// intra-op pool. This is what lets int8 ride the serving scheduler's
// arbitrary coalescing without breaking replica byte-agreement.
TEST(QuantGemmTest, BatchCompositionAndPoolIndependence) {
  Rng rng(31);
  const int64_t m = 9, k = 312, n = 64;
  std::vector<float> w = RandomVec(k * n, rng);
  std::vector<float> x = RandomVec(m * k, rng);
  std::vector<float> bias = RandomVec(n, rng);
  PackedQuantWeight packed = PackWeightPerChannel(w.data(), k, n);

  std::vector<float> batched(static_cast<size_t>(m * n));
  QuantLinearForward(x.data(), m, packed, bias.data(), batched.data(),
                     nullptr);
  ThreadPool pool(3);
  std::vector<float> pooled(static_cast<size_t>(m * n));
  QuantLinearForward(x.data(), m, packed, bias.data(), pooled.data(), &pool);
  EXPECT_EQ(0, std::memcmp(batched.data(), pooled.data(),
                           batched.size() * sizeof(float)));
  for (int64_t r = 0; r < m; ++r) {
    std::vector<float> solo(static_cast<size_t>(n));
    QuantLinearForward(x.data() + r * k, 1, packed, bias.data(), solo.data(),
                       nullptr);
    ASSERT_EQ(0, std::memcmp(solo.data(), batched.data() + r * n,
                             solo.size() * sizeof(float)))
        << "row " << r;
  }
}

TEST(QuantGemmTest, TracksFp32WithinQuantizationBound) {
  Rng rng(43);
  const int64_t m = 6, k = 200, n = 24;
  std::vector<float> w = RandomVec(k * n, rng);
  std::vector<float> x = RandomVec(m * k, rng);
  PackedQuantWeight packed = PackWeightPerChannel(w.data(), k, n);
  std::vector<int16_t> qa(static_cast<size_t>(m * packed.k_pad));
  std::vector<float> a_scales(static_cast<size_t>(m));
  QuantizeActivationRows(x.data(), m, k, qa.data(), a_scales.data());
  std::vector<float> c(static_cast<size_t>(m * n));
  QuantLinearForward(x.data(), m, packed, nullptr, c.data(), nullptr);

  for (int64_t r = 0; r < m; ++r) {
    for (int64_t j = 0; j < n; ++j) {
      double fp32 = 0.0, bound = 0.0;
      const double ea = a_scales[static_cast<size_t>(r)] * 0.5;
      const double ew = packed.scales[static_cast<size_t>(j)] * 0.5;
      for (int64_t i = 0; i < k; ++i) {
        const double xi = x[static_cast<size_t>(r * k + i)];
        const double wi = w[static_cast<size_t>(i * n + j)];
        fp32 += xi * wi;
        // |x̂ŵ − xw| ≤ |x|·ew + |w|·ea + ea·ew per term.
        bound += std::abs(xi) * ew + std::abs(wi) * ea + ea * ew;
      }
      EXPECT_NEAR(c[static_cast<size_t>(r * n + j)], fp32, bound + 1e-4)
          << "r=" << r << " j=" << j;
    }
  }
}

// The nn gate: Linear::Forward only takes the int8 path when prepacked AND
// inside an int8-context quant region AND gradients are off. Everything
// else must be the bitwise fp32 path.
TEST(QuantLinearGateTest, ActivatesOnlyInsideInt8QuantRegion) {
  Rng rng(5);
  nn::Linear lin(48, 32, rng);
  Tensor x = Tensor::Randn({4, 48}, rng);

  ExecContext::Options fp32_opts;
  fp32_opts.no_grad = true;
  ExecContext fp32_ctx(fp32_opts);
  Tensor fp32_out = lin.Forward(x, &fp32_ctx);

  ASSERT_GT(lin.PrepackQuant(), 0);
  ASSERT_TRUE(lin.quant_prepacked());
  EXPECT_EQ(static_cast<int64_t>(lin.QuantScales().size()), 32);

  // Prepacked but fp32 context: still the fp32 bytes.
  Tensor still_fp32 = lin.Forward(x, &fp32_ctx);
  ASSERT_EQ(0, std::memcmp(fp32_out.data(), still_fp32.data(),
                           sizeof(float) * static_cast<size_t>(
                               fp32_out.numel())));

  // Int8 context, but no quant region open: the dtype alone must not flip
  // kernels mid-graph (only AdtdModel's content forwards open regions).
  ExecContext::Options int8_opts;
  int8_opts.no_grad = true;
  int8_opts.p2_dtype = P2Dtype::kInt8;
  ExecContext int8_ctx(int8_opts);
  Tensor outside_region = lin.Forward(x, &int8_ctx);
  ASSERT_EQ(0, std::memcmp(fp32_out.data(), outside_region.data(),
                           sizeof(float) * static_cast<size_t>(
                               fp32_out.numel())));

  // Inside the region: int8 path — deterministic, near fp32, not
  // byte-equal to it.
  Tensor int8_a, int8_b;
  {
    ScopedExecContext scope(&int8_ctx);
    ScopedQuantRegion region(ExecContext::Current());
    int8_a = lin.Forward(x);
    int8_b = lin.Forward(x);
  }
  ASSERT_EQ(0, std::memcmp(int8_a.data(), int8_b.data(),
                           sizeof(float) * static_cast<size_t>(
                               int8_a.numel())));
  EXPECT_NE(0, std::memcmp(fp32_out.data(), int8_a.data(),
                           sizeof(float) * static_cast<size_t>(
                               fp32_out.numel())));
  for (int64_t i = 0; i < fp32_out.numel(); ++i) {
    EXPECT_NEAR(int8_a.data()[i], fp32_out.data()[i], 0.15f) << "i=" << i;
  }
  // Region closed with the context still bound: back to fp32 bytes.
  {
    ScopedExecContext scope(&int8_ctx);
    Tensor after = lin.Forward(x);
    EXPECT_EQ(0, std::memcmp(fp32_out.data(), after.data(),
                             sizeof(float) * static_cast<size_t>(
                                 fp32_out.numel())));
  }
}

}  // namespace
}  // namespace taste::tensor::quant
