// Tests for the crash-fault-tolerant multi-process serving tier: the wire
// protocol's bit-exact round trips, consistent-hash placement, supervised
// fork/respawn lifecycle, heartbeat liveness, and — the headline invariant —
// that scatter/gather across replicas (including forced mid-request crashes
// with failover re-dispatch) produces results BYTE-IDENTICAL to a
// single-process PipelineExecutor run.
//
// Everything here forks real processes; the suite carries the `unit` label
// (TSan instruments fork poorly, and the tsan CI job runs only tsan-heavy).

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/taste_detector.h"
#include "data/table_generator.h"
#include "model/adtd.h"
#include "obs/aggregate.h"
#include "pipeline/scheduler.h"
#include "serve/router.h"
#include "serve/supervisor.h"
#include "serve/wire.h"
#include "serve/worker.h"
#include "text/wordpiece.h"

namespace taste {
namespace {

// ---------------------------------------------------------------------------
// Wire protocol

TEST(WireTest, DetectRequestRoundTrip) {
  serve::DetectRequest req;
  req.request_id = 0xDEADBEEFCAFEull;
  req.deadline_remaining_ms = 123.456;
  req.lane = 1;     // bulk
  req.p2_dtype = 1; // int8
  req.tables = {"users", "事件", "", std::string("a\0b", 3)};
  auto back = serve::DecodeDetectRequest(serve::EncodeDetectRequest(req));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->request_id, req.request_id);
  EXPECT_EQ(back->deadline_remaining_ms, req.deadline_remaining_ms);
  EXPECT_EQ(back->lane, req.lane);
  EXPECT_EQ(back->p2_dtype, req.p2_dtype);
  EXPECT_EQ(back->tables, req.tables);
}

TEST(WireTest, DetectResponseRoundTripIsBitExact) {
  serve::DetectResponse resp;
  resp.request_id = 7;
  resp.wall_ms = 0.125;
  resp.stats.retries = 3;
  resp.stats.degraded_tables = 1;

  pipeline::TableRunResult t;
  t.status = Status::DeadlineExceeded("deadline exceeded: p1 prep");
  t.outcome = pipeline::TableOutcome::kExpired;
  t.result.table_name = "events";
  t.result.columns_scanned = 4;
  t.result.total_columns = 5;
  core::ColumnPrediction col;
  col.column_name = "ip_address";
  col.ordinal = 3;
  col.went_to_p2 = true;
  col.provenance = core::ResultProvenance::kDegradedMetadataOnly;
  col.admitted_types = {1, 9, 12};
  // Values a lossy (text) encoding would mangle: denormal, NaN payload,
  // signed zero, and an odd mantissa.
  col.probabilities = {std::numeric_limits<float>::denorm_min(),
                       std::nanf("0x5ca1e"), -0.0f, 0.30000001192092896f};
  t.result.columns.push_back(col);
  resp.tables.push_back(t);

  auto back = serve::DecodeDetectResponse(serve::EncodeDetectResponse(resp));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->request_id, resp.request_id);
  EXPECT_EQ(back->stats.retries, 3);
  ASSERT_EQ(back->tables.size(), 1u);
  const auto& bt = back->tables[0];
  EXPECT_EQ(bt.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(bt.status.ToString(), t.status.ToString());
  EXPECT_EQ(bt.outcome, pipeline::TableOutcome::kExpired);
  ASSERT_EQ(bt.result.columns.size(), 1u);
  const auto& bc = bt.result.columns[0];
  EXPECT_EQ(bc.admitted_types, col.admitted_types);
  EXPECT_EQ(bc.provenance, col.provenance);
  ASSERT_EQ(bc.probabilities.size(), col.probabilities.size());
  // memcmp, not ==: NaN != NaN but its bits must survive the wire.
  EXPECT_EQ(std::memcmp(bc.probabilities.data(), col.probabilities.data(),
                        col.probabilities.size() * sizeof(float)),
            0);
}

TEST(WireTest, FrameBufferReassemblesSplitFrames) {
  // EncodeFrame emits the full v2 envelope: header (len + version + type)
  // and CRC trailer; byte-at-a-time reassembly must pop frames exactly at
  // their boundaries with the CRC verified.
  std::string stream =
      serve::EncodeFrame(serve::FrameType::kHeartbeat, "12345678") +
      serve::EncodeFrame(serve::FrameType::kDetectResponse,
                         std::string(1000, 'x'));

  serve::FrameBuffer fb;
  serve::Frame frame;
  int got = 0;
  for (char c : stream) {
    fb.Append(&c, 1);
    auto r = fb.Next(&frame);
    ASSERT_TRUE(r.ok());
    if (*r) {
      ++got;
      if (got == 1) {
        EXPECT_EQ(frame.type, serve::FrameType::kHeartbeat);
        EXPECT_EQ(frame.payload, "12345678");
      } else {
        EXPECT_EQ(frame.type, serve::FrameType::kDetectResponse);
        EXPECT_EQ(frame.payload.size(), 1000u);
      }
    }
  }
  EXPECT_EQ(got, 2);
  EXPECT_EQ(fb.buffered(), 0u);
}

TEST(WireTest, OversizedFramePrefixIsRejected) {
  serve::FrameBuffer fb;
  const char bad[6] = {'\xFF', '\xFF', '\xFF', '\xFF',
                       static_cast<char>(serve::kWireProtocolVersion), 1};
  fb.Append(bad, sizeof(bad));
  serve::Frame frame;
  auto r = fb.Next(&frame);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(fb.last_fault(), serve::FrameFault::kOversized);
}

TEST(WireTest, CorruptedPayloadFailsCrcAndCountsIt) {
  obs::Counter* corrupt =
      obs::Registry::Global().GetCounter("taste_frames_corrupt_total");
  const int64_t before = corrupt->Value();
  std::string frame = serve::EncodeFrame(serve::FrameType::kDetectResponse,
                                         "the payload bytes");
  frame[serve::kFrameHeaderBytes + 3] ^= 0x01;  // one flipped payload bit
  serve::FrameBuffer fb;
  fb.Append(frame.data(), frame.size());
  serve::Frame out;
  auto r = fb.Next(&out);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(fb.last_fault(), serve::FrameFault::kBadCrc);
  EXPECT_GT(corrupt->Value(), before);
}

TEST(WireTest, CorruptedHeaderLengthFailsCrc) {
  // A length-prefix lie that still fits the cap: the frame parses to the
  // wrong boundary and the CRC (which covers version+type+payload) fails.
  std::string frame = serve::EncodeFrame(serve::FrameType::kHeartbeat,
                                         std::string(64, 'a'));
  frame[0] ^= 0x04;  // payload length 64 -> 68
  frame += std::string(8, 'b');  // keep enough bytes buffered to "complete"
  serve::FrameBuffer fb;
  fb.Append(frame.data(), frame.size());
  serve::Frame out;
  auto r = fb.Next(&out);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(fb.last_fault(), serve::FrameFault::kBadCrc);
}

TEST(WireTest, WrongProtocolVersionIsRejected) {
  std::string frame = serve::EncodeFrame(serve::FrameType::kHeartbeat, "x");
  frame[4] = static_cast<char>(serve::kWireProtocolVersion + 1);
  serve::FrameBuffer fb;
  fb.Append(frame.data(), frame.size());
  serve::Frame out;
  auto r = fb.Next(&out);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(fb.last_fault(), serve::FrameFault::kBadVersion);
}

TEST(WireTest, InvalidFrameTypeIsRejected) {
  std::string frame = serve::EncodeFrame(serve::FrameType::kHeartbeat, "x");
  frame[5] = static_cast<char>(0xEE);
  serve::FrameBuffer fb;
  fb.Append(frame.data(), frame.size());
  serve::Frame out;
  auto r = fb.Next(&out);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(fb.last_fault(), serve::FrameFault::kBadType);
}

TEST(WireTest, TruncatedFrameWaitsInsteadOfFaulting) {
  // A prefix of a valid frame is not an error in a stream — it just has
  // not finished arriving. No fault, no frame.
  const std::string frame =
      serve::EncodeFrame(serve::FrameType::kDetectResponse, "payload");
  serve::FrameBuffer fb;
  fb.Append(frame.data(), frame.size() - 1);
  serve::Frame out;
  auto r = fb.Next(&out);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  EXPECT_EQ(fb.last_fault(), serve::FrameFault::kNone);
}

TEST(WireTest, ReadFrameRejectsTruncatedStreamOverPipe) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const std::string frame =
      serve::EncodeFrame(serve::FrameType::kHeartbeat, "abcdefgh");
  // Write all but the CRC trailer's last byte, then close: mid-frame EOF.
  ASSERT_EQ(::write(sv[0], frame.data(), frame.size() - 1),
            static_cast<ssize_t>(frame.size() - 1));
  ::close(sv[0]);
  serve::FrameFault fault = serve::FrameFault::kNone;
  auto r = serve::ReadFrame(sv[1], &fault);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(fault, serve::FrameFault::kTruncated);
  ::close(sv[1]);
}

TEST(WireTest, MetricsSnapshotRoundTrip) {
  obs::Registry reg;
  reg.GetCounter("c_total")->Inc(5);
  reg.GetGauge("g_bytes")->Set(1.5);
  reg.GetHistogram("h_ms", {1.0, 10.0})->Observe(3.0);
  auto back = serve::DecodeMetricsSnapshot(
      serve::EncodeMetricsSnapshot(reg.snapshot()));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->counters.at("c_total"), 5);
  EXPECT_DOUBLE_EQ(back->gauges.at("g_bytes"), 1.5);
  const auto& h = back->histograms.at("h_ms");
  EXPECT_EQ(h.count, 1);
  EXPECT_DOUBLE_EQ(h.sum, 3.0);
  ASSERT_EQ(h.bounds.size(), 2u);
  ASSERT_EQ(h.counts.size(), 3u);
  EXPECT_EQ(h.counts[1], 1);
}

// ---------------------------------------------------------------------------
// Consistent hash ring

TEST(RingTest, PlacementIsDeterministicAndFailoverIsMinimal) {
  serve::ConsistentHashRing ring(4, 64);
  serve::ConsistentHashRing ring2(4, 64);
  auto all = [](int) { return true; };
  std::vector<int> owners;
  int spread[4] = {0, 0, 0, 0};
  for (int i = 0; i < 200; ++i) {
    const std::string t = "table_" + std::to_string(i);
    const int o = ring.NodeFor(t, all);
    ASSERT_GE(o, 0);
    ASSERT_LT(o, 4);
    EXPECT_EQ(o, ring2.NodeFor(t, all));  // pure function of the name
    owners.push_back(o);
    ++spread[o];
  }
  for (int n : spread) EXPECT_GT(n, 0) << "vnode placement left a node empty";

  // Kill node 2: only its tables move; everyone else keeps their owner.
  auto not2 = [](int id) { return id != 2; };
  for (int i = 0; i < 200; ++i) {
    const std::string t = "table_" + std::to_string(i);
    const int o = ring.NodeFor(t, not2);
    ASSERT_NE(o, 2);
    if (owners[static_cast<size_t>(i)] != 2) {
      EXPECT_EQ(o, owners[static_cast<size_t>(i)]) << t;
    }
  }
  // No acceptable node at all.
  EXPECT_EQ(ring.NodeFor("x", [](int) { return false; }), -1);
}

// ---------------------------------------------------------------------------
// Shared detection environment (built once; the fixture cost is one tiny
// model + tokenizer, same as the chaos harness startup)

struct ServeEnv {
  data::Dataset dataset;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer;
  std::unique_ptr<model::AdtdModel> model;
  std::unique_ptr<core::TasteDetector> detector;
  std::vector<std::string> table_names;

  static const ServeEnv& Get() {
    static ServeEnv* env = [] {
      auto* e = new ServeEnv();
      e->dataset = data::GenerateDataset(data::DatasetProfile::WikiLike(6));
      text::WordPieceTrainer trainer({.vocab_size = 400});
      for (const auto& d : data::BuildCorpusDocuments(e->dataset)) {
        trainer.AddDocument(d);
      }
      e->tokenizer =
          std::make_unique<text::WordPieceTokenizer>(trainer.Train());
      model::AdtdConfig cfg = model::AdtdConfig::Tiny(
          e->tokenizer->vocab().size(),
          data::SemanticTypeRegistry::Default().size());
      Rng rng(21);
      e->model = std::make_unique<model::AdtdModel>(cfg, rng);
      core::TasteOptions topt;  // faults off, defaults everywhere
      e->detector = std::make_unique<core::TasteDetector>(
          e->model.get(), e->tokenizer.get(), topt);
      for (const auto& t : e->dataset.tables) {
        e->table_names.push_back(t.name);
      }
      return e;
    }();
    return *env;
  }

  std::unique_ptr<clouddb::SimulatedDatabase> MakeDb() const {
    clouddb::CostModel cost;
    cost.time_scale = 0.0;  // ledger-only I/O costs; no real sleeping
    auto db = std::make_unique<clouddb::SimulatedDatabase>(cost);
    EXPECT_TRUE(db->IngestDataset(dataset).ok());
    return db;
  }
};

pipeline::PipelineOptions WorkerPipelineOptions() {
  pipeline::PipelineOptions popt;
  popt.prep_threads = 2;
  popt.infer_threads = 2;
  return popt;
}

/// Bit-exact comparison of two batch results (the idempotency oracle).
void ExpectBatchesIdentical(const pipeline::BatchResult& got,
                            const pipeline::BatchResult& want) {
  ASSERT_EQ(got.tables.size(), want.tables.size());
  for (size_t i = 0; i < want.tables.size(); ++i) {
    const auto& g = got.tables[i];
    const auto& w = want.tables[i];
    EXPECT_EQ(g.outcome, w.outcome) << i;
    EXPECT_EQ(g.status.ToString(), w.status.ToString()) << i;
    EXPECT_EQ(g.result.table_name, w.result.table_name);
    EXPECT_EQ(g.result.columns_scanned, w.result.columns_scanned);
    EXPECT_EQ(g.result.degraded_columns, w.result.degraded_columns);
    ASSERT_EQ(g.result.columns.size(), w.result.columns.size()) << i;
    for (size_t c = 0; c < w.result.columns.size(); ++c) {
      const auto& gc = g.result.columns[c];
      const auto& wc = w.result.columns[c];
      EXPECT_EQ(gc.column_name, wc.column_name);
      EXPECT_EQ(gc.ordinal, wc.ordinal);
      EXPECT_EQ(gc.went_to_p2, wc.went_to_p2);
      EXPECT_EQ(gc.provenance, wc.provenance);
      EXPECT_EQ(gc.admitted_types, wc.admitted_types);
      ASSERT_EQ(gc.probabilities.size(), wc.probabilities.size());
      if (!wc.probabilities.empty()) {
        EXPECT_EQ(std::memcmp(gc.probabilities.data(), wc.probabilities.data(),
                              wc.probabilities.size() * sizeof(float)),
                  0)
            << g.result.table_name << "." << gc.column_name
            << ": probabilities differ bitwise";
      }
    }
  }
}

pipeline::BatchResult OracleRun(const ServeEnv& env,
                                const std::vector<std::string>& tables) {
  auto db = env.MakeDb();
  pipeline::PipelineExecutor exec(env.detector.get(), db.get(),
                                  WorkerPipelineOptions());
  return exec.RunBatch(tables);
}

// ---------------------------------------------------------------------------
// Router vs. single-process oracle

TEST(RouterTest, ScatterGatherMatchesSingleProcessByteForByte) {
  const ServeEnv& env = ServeEnv::Get();
  auto db = env.MakeDb();
  serve::WorkerEnv wenv;
  wenv.detector = env.detector.get();
  wenv.db = db.get();
  wenv.pipeline_options = WorkerPipelineOptions();
  serve::RouterOptions ropt;
  ropt.supervisor.replicas = 3;
  serve::Router router(wenv, ropt);
  ASSERT_TRUE(router.Start().ok());

  pipeline::BatchResult got = router.RunBatch(env.table_names);
  ExpectBatchesIdentical(got, OracleRun(env, env.table_names));
  EXPECT_EQ(router.stats().replica_deaths, 0);
  EXPECT_EQ(router.stats().local_fallback_tables, 0);
  EXPECT_EQ(router.stats().dispatched_tables,
            static_cast<int64_t>(env.table_names.size()));
  router.Shutdown();
}

TEST(RouterTest, InjectedMidRequestCrashFailsOverByteIdentical) {
  const ServeEnv& env = ServeEnv::Get();
  auto db = env.MakeDb();
  serve::WorkerEnv wenv;
  wenv.detector = env.detector.get();
  wenv.db = db.get();
  wenv.pipeline_options = WorkerPipelineOptions();
  serve::RouterOptions ropt;
  ropt.supervisor.replicas = 3;

  // Aim the crash at the actual ring owner of a table so the injected
  // _exit fires deterministically on first dispatch.
  serve::ConsistentHashRing ring(ropt.supervisor.replicas, ropt.vnodes);
  const std::string victim_table = env.table_names[1];
  wenv.crash_replica = ring.NodeFor(victim_table, [](int) { return true; });
  wenv.crash_table = victim_table;

  serve::Router router(wenv, ropt);
  ASSERT_TRUE(router.Start().ok());
  pipeline::BatchResult got = router.RunBatch(env.table_names);

  // Failover must have replayed the dead replica's tables elsewhere, and
  // the merged output must be indistinguishable from a crash-free run.
  ExpectBatchesIdentical(got, OracleRun(env, env.table_names));
  EXPECT_GE(router.stats().replica_deaths, 1);
  EXPECT_GE(router.stats().redispatched_tables, 1);
  // The fleet recovers to full strength within the respawn backoff budget.
  EXPECT_TRUE(router.MaintainUntilAllUp(5000.0));
  EXPECT_GE(router.supervisor().total_respawns(), 1);
  router.Shutdown();
}

TEST(RouterTest, ExhaustedReplicaSetFallsBackLocally) {
  const ServeEnv& env = ServeEnv::Get();
  auto db = env.MakeDb();
  serve::WorkerEnv wenv;
  wenv.detector = env.detector.get();
  wenv.db = db.get();
  wenv.pipeline_options = WorkerPipelineOptions();
  serve::RouterOptions ropt;
  ropt.supervisor.replicas = 1;
  ropt.supervisor.max_respawns = 0;  // first death parks the only replica
  wenv.crash_replica = 0;
  wenv.crash_table = env.table_names[0];

  serve::Router router(wenv, ropt);
  ASSERT_TRUE(router.Start().ok());
  pipeline::BatchResult got = router.RunBatch(env.table_names);

  // The whole batch degraded to the router's local executor — and is still
  // byte-identical, because fallback shares detector, database, options.
  ExpectBatchesIdentical(got, OracleRun(env, env.table_names));
  EXPECT_GE(router.stats().local_fallback_tables,
            static_cast<int64_t>(env.table_names.size()));
  EXPECT_EQ(router.supervisor().alive_count(), 0);
  // A parked replica never respawns: Maintain reaches "full strength"
  // (nothing left pending) with the fleet still at zero live replicas.
  EXPECT_TRUE(router.MaintainUntilAllUp(50.0));
  EXPECT_EQ(router.supervisor().replica(0)->state,
            serve::ReplicaState::kParked);
  EXPECT_EQ(router.supervisor().alive_count(), 0);
  router.Shutdown();
}

TEST(RouterTest, PreExpiredDeadlinePropagatesToWorkers) {
  const ServeEnv& env = ServeEnv::Get();
  auto db = env.MakeDb();
  serve::WorkerEnv wenv;
  wenv.detector = env.detector.get();
  wenv.db = db.get();
  wenv.pipeline_options = WorkerPipelineOptions();
  wenv.pipeline_options.deadline_ms = -1.0;  // expired before work starts
  serve::RouterOptions ropt;
  ropt.supervisor.replicas = 2;
  serve::Router router(wenv, ropt);
  ASSERT_TRUE(router.Start().ok());

  pipeline::BatchResult got = router.RunBatch(env.table_names);
  ASSERT_EQ(got.tables.size(), env.table_names.size());
  for (const auto& t : got.tables) {
    EXPECT_EQ(t.outcome, pipeline::TableOutcome::kExpired)
        << pipeline::TableOutcomeName(t.outcome);
    EXPECT_EQ(t.status.code(), StatusCode::kDeadlineExceeded);
  }
  router.Shutdown();
}

TEST(RouterTest, ScrapeAggregatesReplicaRegistries) {
  const ServeEnv& env = ServeEnv::Get();
  auto db = env.MakeDb();
  serve::WorkerEnv wenv;
  wenv.detector = env.detector.get();
  wenv.db = db.get();
  wenv.pipeline_options = WorkerPipelineOptions();
  serve::RouterOptions ropt;
  ropt.supervisor.replicas = 2;
  serve::Router router(wenv, ropt);
  ASSERT_TRUE(router.Start().ok());
  (void)router.RunBatch(env.table_names);

  auto snap = router.Scrape();
  ASSERT_TRUE(snap.ok());
  // The fleet served every table exactly once between the two replicas.
  EXPECT_EQ(snap->counters.at("taste_worker_tables_total"),
            static_cast<int64_t>(env.table_names.size()));
  // Per-replica series exist alongside the summed base series.
  int per_replica = 0;
  for (const auto& [name, v] : snap->counters) {
    if (name.rfind("taste_worker_tables_total{replica=", 0) == 0) {
      ++per_replica;
    }
  }
  EXPECT_EQ(per_replica, 2);
  router.Shutdown();
}

// ---------------------------------------------------------------------------
// Gray failures: wedge (SIGSTOP), corruption, slow drip

TEST(RouterTest, SigstoppedReplicaIsHedgedByteIdentical) {
  const ServeEnv& env = ServeEnv::Get();
  auto db = env.MakeDb();
  serve::WorkerEnv wenv;
  wenv.detector = env.detector.get();
  wenv.db = db.get();
  wenv.pipeline_options = WorkerPipelineOptions();
  serve::RouterOptions ropt;
  ropt.supervisor.replicas = 3;
  ropt.hedge_multiplier = 1.0;     // hedge promptly; this test waits on it
  ropt.hedge_floor_ms = 40.0;
  ropt.hedge_budget_fraction = 1.0;

  // Wedge the ring owner of a table mid-request: SIGSTOP means no SIGCHLD
  // (SA_NOCLDSTOP), no EOF, a process that is alive but makes no progress.
  // Without hedging this leg would stall its hash range to the deadline.
  serve::ConsistentHashRing ring(ropt.supervisor.replicas, ropt.vnodes);
  const std::string victim_table = env.table_names[2];
  wenv.wedge_replica = ring.NodeFor(victim_table, [](int) { return true; });
  wenv.wedge_table = victim_table;

  serve::Router router(wenv, ropt);
  ASSERT_TRUE(router.Start().ok());
  pipeline::BatchResult got = router.RunBatch(env.table_names);

  // The hedge raced the wedge and won; results are indistinguishable from
  // a healthy single-process run.
  ExpectBatchesIdentical(got, OracleRun(env, env.table_names));
  EXPECT_GE(router.stats().hedged_tables, 1);
  router.Shutdown();
}

TEST(RouterTest, WatchdogRecoversWedgedReplicaWithoutHedging) {
  const ServeEnv& env = ServeEnv::Get();
  auto db = env.MakeDb();
  serve::WorkerEnv wenv;
  wenv.detector = env.detector.get();
  wenv.db = db.get();
  wenv.pipeline_options = WorkerPipelineOptions();
  serve::RouterOptions ropt;
  ropt.supervisor.replicas = 3;
  ropt.hedge_multiplier = 0.0;  // isolate the watchdog path
  ropt.watchdog_ms = 80.0;

  serve::ConsistentHashRing ring(ropt.supervisor.replicas, ropt.vnodes);
  const std::string victim_table = env.table_names[0];
  wenv.wedge_replica = ring.NodeFor(victim_table, [](int) { return true; });
  wenv.wedge_table = victim_table;

  serve::Router router(wenv, ropt);
  ASSERT_TRUE(router.Start().ok());
  pipeline::BatchResult got = router.RunBatch(env.table_names);

  // The watchdog escalated SIGTERM -> SIGKILL on the stopped process and
  // re-dispatched its tables byte-identically.
  ExpectBatchesIdentical(got, OracleRun(env, env.table_names));
  EXPECT_GE(router.supervisor().watchdog_kills(), 1);
  EXPECT_GE(router.stats().replica_deaths, 1);
  EXPECT_GE(router.stats().redispatched_tables, 1);
  // SIGKILL terminates even a stopped process; the fleet heals.
  EXPECT_TRUE(router.MaintainUntilAllUp(5000.0));
  EXPECT_GE(router.supervisor().total_respawns(), 1);
  router.Shutdown();
}

TEST(RouterTest, CorruptResponseIsNeverSurfacedAndRedispatched) {
  const ServeEnv& env = ServeEnv::Get();
  auto db = env.MakeDb();
  serve::WorkerEnv wenv;
  wenv.detector = env.detector.get();
  wenv.db = db.get();
  wenv.pipeline_options = WorkerPipelineOptions();
  serve::RouterOptions ropt;
  ropt.supervisor.replicas = 3;

  serve::ConsistentHashRing ring(ropt.supervisor.replicas, ropt.vnodes);
  const std::string victim_table = env.table_names[1];
  wenv.corrupt_replica = ring.NodeFor(victim_table, [](int) { return true; });
  wenv.corrupt_table = victim_table;

  obs::Counter* corrupt =
      obs::Registry::Global().GetCounter("taste_frames_corrupt_total");
  const int64_t corrupt_before = corrupt->Value();

  serve::Router router(wenv, ropt);
  ASSERT_TRUE(router.Start().ok());
  pipeline::BatchResult got = router.RunBatch(env.table_names);

  // The bit-flipped response failed its CRC, was counted, and its tables
  // were recomputed elsewhere — corrupted bytes never reach the caller.
  ExpectBatchesIdentical(got, OracleRun(env, env.table_names));
  EXPECT_GT(corrupt->Value(), corrupt_before);
  EXPECT_GE(router.stats().replica_deaths, 1);
  EXPECT_GE(router.stats().redispatched_tables, 1);
  router.Shutdown();
}

TEST(RouterTest, SlowDripResponseReassemblesByteIdentical) {
  const ServeEnv& env = ServeEnv::Get();
  auto db = env.MakeDb();
  serve::WorkerEnv wenv;
  wenv.detector = env.detector.get();
  wenv.db = db.get();
  wenv.pipeline_options = WorkerPipelineOptions();
  serve::RouterOptions ropt;
  ropt.supervisor.replicas = 2;
  ropt.hedge_multiplier = 0.0;  // the drip alone must be harmless

  serve::ConsistentHashRing ring(ropt.supervisor.replicas, ropt.vnodes);
  const std::string victim_table = env.table_names[3];
  wenv.drip_replica = ring.NodeFor(victim_table, [](int) { return true; });
  wenv.drip_table = victim_table;
  wenv.drip_chunk_bytes = 64;
  wenv.drip_delay_us = 100;

  serve::Router router(wenv, ropt);
  ASSERT_TRUE(router.Start().ok());
  pipeline::BatchResult got = router.RunBatch(env.table_names);

  // Partial writes split frames at arbitrary byte boundaries; the frame
  // buffer reassembles them with the CRC intact — no fault, no failover.
  ExpectBatchesIdentical(got, OracleRun(env, env.table_names));
  EXPECT_EQ(router.stats().replica_deaths, 0);
  router.Shutdown();
}

// ---------------------------------------------------------------------------
// Supervisor lifecycle

TEST(SupervisorTest, SigkillIsDetectedAndRespawnedWithBackoff) {
  const ServeEnv& env = ServeEnv::Get();
  auto db = env.MakeDb();
  serve::WorkerEnv wenv;
  wenv.detector = env.detector.get();
  wenv.db = db.get();
  wenv.pipeline_options = WorkerPipelineOptions();
  serve::SupervisorOptions sopt;
  sopt.replicas = 2;
  serve::Supervisor sup(wenv, sopt);
  ASSERT_TRUE(sup.Start().ok());
  ASSERT_EQ(sup.alive_count(), 2);

  const pid_t victim = sup.replica(0)->pid;
  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  // SIGCHLD -> self-pipe -> reap. Give the kernel a beat.
  std::vector<int> died;
  for (int spin = 0; spin < 200 && died.empty(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    died = sup.ReapDead();
  }
  ASSERT_EQ(died, std::vector<int>{0});
  EXPECT_EQ(sup.alive_count(), 1);
  EXPECT_EQ(sup.replica(0)->state, serve::ReplicaState::kDead);

  // Respawn honours the deterministic backoff, then brings the replica up.
  std::vector<int> up;
  for (int spin = 0; spin < 400 && up.empty(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    up = sup.RespawnEligible();
  }
  ASSERT_EQ(up, std::vector<int>{0});
  EXPECT_EQ(sup.alive_count(), 2);
  EXPECT_EQ(sup.total_respawns(), 1);
  ASSERT_EQ(sup.recovery_times_ms().size(), 1u);
  EXPECT_GT(sup.recovery_times_ms()[0], 0.0);
  sup.Shutdown();
}

TEST(SupervisorTest, HeartbeatTimeoutCondemnsWedgedReplica) {
  const ServeEnv& env = ServeEnv::Get();
  auto db = env.MakeDb();
  serve::WorkerEnv wenv;
  wenv.detector = env.detector.get();
  wenv.db = db.get();
  wenv.pipeline_options = WorkerPipelineOptions();
  serve::SupervisorOptions sopt;
  sopt.replicas = 1;
  sopt.heartbeat_interval_ms = 10.0;
  sopt.heartbeat_miss_limit = 2;
  serve::Supervisor sup(wenv, sopt);
  ASSERT_TRUE(sup.Start().ok());

  // SIGSTOP wedges the worker without killing it: the process is alive
  // (no SIGCHLD, thanks to SA_NOCLDSTOP) but will never answer a probe —
  // exactly the failure mode only heartbeats can catch.
  ASSERT_EQ(::kill(sup.replica(0)->pid, SIGSTOP), 0);

  std::vector<int> condemned;
  for (int spin = 0; spin < 500 && condemned.empty(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    condemned = sup.ProbeIdle({0});
  }
  ASSERT_EQ(condemned, std::vector<int>{0});
  EXPECT_EQ(sup.alive_count(), 0);
  EXPECT_GE(sup.replica(0)->deaths, 1);
  sup.Shutdown();
}

TEST(SupervisorTest, ErrorScoreQuarantinesAndProbesReadmit) {
  const ServeEnv& env = ServeEnv::Get();
  auto db = env.MakeDb();
  serve::WorkerEnv wenv;
  wenv.detector = env.detector.get();
  wenv.db = db.get();
  wenv.pipeline_options = WorkerPipelineOptions();
  serve::SupervisorOptions sopt;
  sopt.replicas = 2;
  sopt.heartbeat_interval_ms = 1.0;  // fast probe cadence for the test
  serve::Supervisor sup(wenv, sopt);
  ASSERT_TRUE(sup.Start().ok());

  // Two gray verdicts leave the error EWMA at 0.4375 — still dispatchable.
  sup.RecordLegError(0);
  sup.RecordLegError(0);
  EXPECT_TRUE(sup.Dispatchable(0));
  // The third crosses the 0.5 threshold with min samples met: quarantine.
  sup.RecordLegError(0);
  EXPECT_EQ(sup.replica(0)->state, serve::ReplicaState::kQuarantined);
  EXPECT_FALSE(sup.Dispatchable(0));
  EXPECT_TRUE(sup.Dispatchable(1));
  EXPECT_EQ(sup.quarantined_count(), 1);
  EXPECT_EQ(sup.total_quarantines(), 1);
  // The process is alive the whole time — quarantine is ring membership,
  // not an execution.
  EXPECT_EQ(sup.replica(0)->deaths, 0);

  // Drive the probe lifecycle: the quarantine breaker spends its first
  // ticks in open-state cooldown, then admits one heartbeat probe per
  // half-open; readmit_probes consecutive acks restore ring membership.
  auto pump_ack = [&](serve::Replica* r) {
    pollfd p{r->fd, POLLIN, 0};
    for (int spin = 0; spin < 400; ++spin) {
      if (::poll(&p, 1, 5) > 0 && (p.revents & POLLIN) != 0) {
        char buf[4096];
        const ssize_t got = ::read(r->fd, buf, sizeof(buf));
        ASSERT_GT(got, 0);
        r->frames.Append(buf, static_cast<size_t>(got));
        serve::Frame f;
        auto n = r->frames.Next(&f);
        ASSERT_TRUE(n.ok());
        if (*n && f.type == serve::FrameType::kHeartbeatAck) {
          sup.HandleHeartbeatAck(0, f.payload);
          return;
        }
      }
    }
    FAIL() << "worker never acked the readmit probe";
  };
  int probes_acked = 0;
  for (int spin = 0;
       spin < 500 && sup.replica(0)->state == serve::ReplicaState::kQuarantined;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const auto condemned = sup.ProbeIdle({0});
    ASSERT_TRUE(condemned.empty());
    if (sup.replica(0)->hb_outstanding) {
      pump_ack(sup.replica(0));
      ++probes_acked;
    }
  }
  EXPECT_EQ(sup.replica(0)->state, serve::ReplicaState::kUp);
  EXPECT_TRUE(sup.Dispatchable(0));
  EXPECT_EQ(sup.quarantined_count(), 0);
  EXPECT_EQ(probes_acked, sopt.readmit_probes);
  // Readmission forgives the error record; the next single error must not
  // instantly re-quarantine.
  sup.RecordLegError(0);
  EXPECT_EQ(sup.replica(0)->state, serve::ReplicaState::kUp);
  sup.Shutdown();
}

// ---------------------------------------------------------------------------
// Metrics aggregation (pure snapshot arithmetic)

TEST(AggregateTest, SumsBaseSeriesAndFansOutPerPartLabels) {
  obs::Registry a, b;
  a.GetCounter("req_total")->Inc(3);
  b.GetCounter("req_total")->Inc(4);
  a.GetGauge("bytes")->Set(10.0);
  b.GetGauge("bytes")->Set(5.0);
  a.GetHistogram("lat_ms", {1.0, 10.0})->Observe(0.5);
  b.GetHistogram("lat_ms", {1.0, 10.0})->Observe(5.0);
  // Already-labeled series sum under their own name but never nest labels.
  a.GetCounter("stage_ms{stage=\"p1\"}")->Inc(1);
  b.GetCounter("stage_ms{stage=\"p1\"}")->Inc(2);

  auto merged = obs::AggregateSnapshots(
      "replica", {{"0", a.snapshot()}, {"1", b.snapshot()}});
  EXPECT_EQ(merged.counters.at("req_total"), 7);
  EXPECT_EQ(merged.counters.at("req_total{replica=\"0\"}"), 3);
  EXPECT_EQ(merged.counters.at("req_total{replica=\"1\"}"), 4);
  EXPECT_DOUBLE_EQ(merged.gauges.at("bytes"), 15.0);
  EXPECT_EQ(merged.histograms.at("lat_ms").count, 2);
  EXPECT_DOUBLE_EQ(merged.histograms.at("lat_ms").sum, 5.5);
  EXPECT_EQ(merged.histograms.at("lat_ms").counts[0], 1);
  EXPECT_EQ(merged.histograms.at("lat_ms").counts[1], 1);
  EXPECT_EQ(merged.counters.at("stage_ms{stage=\"p1\"}"), 3);
  EXPECT_EQ(merged.counters.count("stage_ms{stage=\"p1\"}{replica=\"0\"}"),
            0u);
}

TEST(AggregateTest, EmptyPartContributesNothing) {
  // A replica that scraped before serving anything returns an empty
  // snapshot; it must not perturb sums or mint phantom labeled series.
  obs::Registry a;
  a.GetCounter("req_total")->Inc(2);
  a.GetGauge("depth")->Set(3.0);
  auto merged = obs::AggregateSnapshots(
      "replica", {{"0", a.snapshot()}, {"1", obs::Registry::Snapshot()}});
  EXPECT_EQ(merged.counters.at("req_total"), 2);
  EXPECT_EQ(merged.counters.count("req_total{replica=\"1\"}"), 0u);
  EXPECT_EQ(merged.counters.size(), 2u);  // base + replica=0 only
  EXPECT_DOUBLE_EQ(merged.gauges.at("depth"), 3.0);
  EXPECT_EQ(merged.gauges.size(), 2u);
  EXPECT_TRUE(merged.histograms.empty());
  // All-empty input produces an empty (not crashing) aggregate.
  auto none = obs::AggregateSnapshots("replica", {});
  EXPECT_TRUE(none.counters.empty());
}

TEST(AggregateTest, HistogramBucketMismatchFoldsScalarsOnly) {
  // Replicas on different build generations can disagree on bucket layout;
  // adding bucket-wise would be wrong, dropping the series would be worse.
  // The first layout wins and only count/sum fold in from the misfit.
  obs::Registry a, b;
  a.GetHistogram("lat_ms", {1.0, 10.0})->Observe(0.5);
  b.GetHistogram("lat_ms", {1.0, 5.0, 10.0})->Observe(7.0);
  auto merged = obs::AggregateSnapshots(
      "replica", {{"0", a.snapshot()}, {"1", b.snapshot()}});
  const auto& base = merged.histograms.at("lat_ms");
  EXPECT_EQ(base.bounds, (std::vector<double>{1.0, 10.0}));
  EXPECT_EQ(base.count, 2);
  EXPECT_DOUBLE_EQ(base.sum, 7.5);
  int64_t bucketed = 0;
  for (int64_t c : base.counts) bucketed += c;
  EXPECT_EQ(bucketed, 1);  // only part 0's observation landed in a bucket
  // The per-part series keep their own layouts intact.
  EXPECT_EQ(merged.histograms.at("lat_ms{replica=\"0\"}").bounds.size(), 2u);
  EXPECT_EQ(merged.histograms.at("lat_ms{replica=\"1\"}").bounds.size(), 3u);
}

TEST(AggregateTest, LiteralReplicaLabeledSeriesSumsWithFanOut) {
  // A part that already exports a series spelled exactly like the fan-out
  // target (replica 0's own "x_total{replica=\"0\"}") must SUM with the
  // fan-out series — never nest labels, never clobber either side.
  obs::Registry a, b;
  a.GetCounter("x_total")->Inc(1);
  b.GetCounter("x_total{replica=\"0\"}")->Inc(5);
  auto merged = obs::AggregateSnapshots(
      "replica", {{"0", a.snapshot()}, {"1", b.snapshot()}});
  EXPECT_EQ(merged.counters.at("x_total"), 1);
  EXPECT_EQ(merged.counters.at("x_total{replica=\"0\"}"), 6);
  for (const auto& [name, v] : merged.counters) {
    EXPECT_EQ(name.find('{'), name.rfind('{')) << "nested label in " << name;
  }
}

}  // namespace
}  // namespace taste
