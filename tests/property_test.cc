// Property-based tests: parameterized sweeps asserting invariants of the
// numeric substrate, tokenizer, histograms, metrics, and data generation
// across many shapes and seeds (TEST_P / INSTANTIATE_TEST_SUITE_P).

#include <cmath>

#include <gtest/gtest.h>

#include "clouddb/histogram.h"
#include "data/table_generator.h"
#include "data/wordlists.h"
#include "eval/metrics.h"
#include "tensor/ops.h"
#include "text/wordpiece.h"

namespace taste {
namespace {

// ---- tensor properties over random shapes -------------------------------------

struct ShapeCase {
  int64_t rows;
  int64_t cols;
  uint64_t seed;
};

class TensorPropertyTest : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(TensorPropertyTest, SoftmaxRowsSumToOne) {
  auto p = GetParam();
  Rng rng(p.seed);
  tensor::Tensor x = tensor::Tensor::Randn({p.rows, p.cols}, rng, 3.0f);
  tensor::Tensor s = tensor::Softmax(x);
  for (int64_t r = 0; r < p.rows; ++r) {
    double sum = 0;
    for (int64_t c = 0; c < p.cols; ++c) sum += s.data()[r * p.cols + c];
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST_P(TensorPropertyTest, SoftmaxIsShiftInvariant) {
  auto p = GetParam();
  Rng rng(p.seed);
  tensor::Tensor x = tensor::Tensor::Randn({p.rows, p.cols}, rng);
  tensor::Tensor y = tensor::AddScalar(x, 7.5f);
  tensor::Tensor sx = tensor::Softmax(x);
  tensor::Tensor sy = tensor::Softmax(y);
  for (int64_t i = 0; i < sx.numel(); ++i) {
    EXPECT_NEAR(sx.data()[i], sy.data()[i], 1e-5f);
  }
}

TEST_P(TensorPropertyTest, TransposeIsInvolution) {
  auto p = GetParam();
  Rng rng(p.seed);
  tensor::Tensor x = tensor::Tensor::Randn({p.rows, p.cols}, rng);
  tensor::Tensor tt = tensor::TransposeLast2(tensor::TransposeLast2(x));
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(x.data()[i], tt.data()[i]);
  }
}

TEST_P(TensorPropertyTest, MatMulAssociativity) {
  auto p = GetParam();
  Rng rng(p.seed);
  tensor::Tensor a = tensor::Tensor::Randn({p.rows, p.cols}, rng, 0.5f);
  tensor::Tensor b = tensor::Tensor::Randn({p.cols, p.rows}, rng, 0.5f);
  tensor::Tensor c = tensor::Tensor::Randn({p.rows, p.cols}, rng, 0.5f);
  tensor::Tensor left = tensor::MatMul(tensor::MatMul(a, b), c);
  tensor::Tensor right = tensor::MatMul(a, tensor::MatMul(b, c));
  for (int64_t i = 0; i < left.numel(); ++i) {
    EXPECT_NEAR(left.data()[i], right.data()[i],
                1e-3f * (1.0f + std::abs(left.data()[i])));
  }
}

TEST_P(TensorPropertyTest, LayerNormShiftAndScaleInvariant) {
  // With unit gamma and zero beta, LN(a*x + b) == LN(x) for a > 0.
  auto p = GetParam();
  Rng rng(p.seed);
  tensor::Tensor x = tensor::Tensor::Randn({p.rows, p.cols}, rng);
  tensor::Tensor y = tensor::AddScalar(tensor::Scale(x, 3.0f), -2.0f);
  tensor::Tensor gamma = tensor::Tensor::Full({p.cols}, 1.0f);
  tensor::Tensor beta = tensor::Tensor::Zeros({p.cols});
  tensor::Tensor lx = tensor::LayerNorm(x, gamma, beta);
  tensor::Tensor ly = tensor::LayerNorm(y, gamma, beta);
  for (int64_t i = 0; i < lx.numel(); ++i) {
    EXPECT_NEAR(lx.data()[i], ly.data()[i], 2e-3f);
  }
}

TEST_P(TensorPropertyTest, SigmoidBounds) {
  auto p = GetParam();
  Rng rng(p.seed);
  tensor::Tensor x = tensor::Tensor::Randn({p.rows, p.cols}, rng, 10.0f);
  tensor::Tensor s = tensor::Sigmoid(x);
  // Float sigmoid saturates to exactly 0/1 for |x| beyond ~17; bounds are
  // inclusive.
  for (int64_t i = 0; i < s.numel(); ++i) {
    EXPECT_GE(s.data()[i], 0.0f);
    EXPECT_LE(s.data()[i], 1.0f);
  }
}

TEST_P(TensorPropertyTest, ReshapeRoundTrip) {
  auto p = GetParam();
  Rng rng(p.seed);
  tensor::Tensor x = tensor::Tensor::Randn({p.rows, p.cols}, rng);
  tensor::Tensor r =
      tensor::Reshape(tensor::Reshape(x, {p.cols * p.rows}), {p.rows, p.cols});
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(x.data()[i], r.data()[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TensorPropertyTest,
    ::testing::Values(ShapeCase{1, 1, 1}, ShapeCase{2, 7, 2},
                      ShapeCase{5, 5, 3}, ShapeCase{8, 3, 4},
                      ShapeCase{16, 16, 5}, ShapeCase{3, 32, 6}));

// ---- gradient-vs-numeric property over ops and seeds ---------------------------

class GradSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GradSweepTest, TransformerMicroGraphGradMatchesNumeric) {
  // A miniature attention-shaped graph checked against central differences
  // for several random seeds.
  Rng rng(GetParam());
  tensor::Tensor q = tensor::Tensor::Randn({3, 4}, rng, 0.5f, true);
  tensor::Tensor k = tensor::Tensor::Randn({5, 4}, rng, 0.5f, true);
  tensor::Tensor v = tensor::Tensor::Randn({5, 4}, rng, 0.5f, true);
  auto forward = [&](const tensor::Tensor& qq, const tensor::Tensor& kk,
                     const tensor::Tensor& vv) {
    tensor::Tensor scores =
        tensor::Scale(tensor::MatMul(qq, tensor::TransposeLast2(kk)), 0.5f);
    tensor::Tensor probs = tensor::Softmax(scores);
    tensor::Tensor ctx = tensor::MatMul(probs, vv);
    return tensor::MeanAll(tensor::Square(ctx));
  };
  tensor::Tensor loss = forward(q, k, v);
  loss.Backward();
  const float eps = 1e-3f;
  for (tensor::Tensor* t : {&q, &k, &v}) {
    std::vector<float> analytic = t->grad();
    for (int64_t i = 0; i < t->numel(); ++i) {
      float orig = t->data()[i];
      t->data()[i] = orig + eps;
      float up = forward(q, k, v).item();
      t->data()[i] = orig - eps;
      float down = forward(q, k, v).item();
      t->data()[i] = orig;
      EXPECT_NEAR(analytic[i], (up - down) / (2 * eps), 2e-2f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GradSweepTest,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---- tokenizer properties -------------------------------------------------------

class TokenizerPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static const text::WordPieceTokenizer& Tok() {
    static const text::WordPieceTokenizer* tok = [] {
      data::Dataset ds =
          data::GenerateDataset(data::DatasetProfile::WikiLike(15));
      text::WordPieceTrainer trainer({.vocab_size = 500});
      for (const auto& d : data::BuildCorpusDocuments(ds)) {
        trainer.AddDocument(d);
      }
      return new text::WordPieceTokenizer(trainer.Train());
    }();
    return *tok;
  }
};

TEST_P(TokenizerPropertyTest, EncodeFixedAlwaysExactLength) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    int len = static_cast<int>(rng.NextInt(1, 24));
    std::string s;
    int words = static_cast<int>(rng.NextInt(0, 6));
    for (int w = 0; w < words; ++w) {
      s += data::GenericWords()[rng.NextBelow(20)] + " ";
    }
    auto ids = Tok().EncodeFixed(s, len);
    EXPECT_EQ(static_cast<int>(ids.size()), len);
  }
}

TEST_P(TokenizerPropertyTest, EncodeNeverProducesOutOfRangeIds) {
  Rng rng(GetParam());
  const auto& reg = data::SemanticTypeRegistry::Default();
  for (int trial = 0; trial < 30; ++trial) {
    int type = static_cast<int>(rng.NextBelow(reg.size()));
    std::string v = reg.GenerateValue(type, rng);
    for (int id : Tok().Encode(v)) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, Tok().vocab().size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerPropertyTest,
                         ::testing::Values(1, 2, 3));

// ---- histogram properties ---------------------------------------------------------

class HistogramPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramPropertyTest, FrequenciesFormDistribution) {
  Rng rng(GetParam());
  std::vector<std::string> values;
  for (int i = 0; i < 200; ++i) {
    values.push_back(std::to_string(rng.NextInt(-1000, 1000)));
  }
  clouddb::Histogram h = clouddb::BuildHistogram(values, 16);
  ASSERT_EQ(h.kind, clouddb::Histogram::Kind::kEquiWidth);
  double sum = 0;
  for (double f : h.frequencies) {
    EXPECT_GE(f, 0.0);
    sum += f;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (size_t b = 1; b < h.bounds.size(); ++b) {
    EXPECT_GT(h.bounds[b], h.bounds[b - 1]);
  }
}

TEST_P(HistogramPropertyTest, TopValuesSortedAndBounded) {
  Rng rng(GetParam());
  std::vector<std::string> values;
  for (int i = 0; i < 150; ++i) {
    values.push_back(rng.Choice(data::Colors()));
  }
  clouddb::Histogram h = clouddb::BuildHistogram(values, 8);
  ASSERT_EQ(h.kind, clouddb::Histogram::Kind::kTopValues);
  for (size_t i = 0; i < h.top_values.size(); ++i) {
    EXPECT_GT(h.top_values[i].second, 0.0);
    EXPECT_LE(h.top_values[i].second, 1.0);
    if (i > 0) {
      EXPECT_GE(h.top_values[i - 1].second, h.top_values[i].second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramPropertyTest,
                         ::testing::Values(7, 8, 9, 10));

// ---- metric properties -------------------------------------------------------------

class MetricsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsPropertyTest, ScoresBoundedAndSwapSymmetric) {
  Rng rng(GetParam());
  std::vector<std::vector<int>> truth, pred;
  for (int c = 0; c < 50; ++c) {
    std::vector<int> t, p;
    for (int s = 0; s < 5; ++s) {
      if (rng.NextBool(0.3)) t.push_back(s);
      if (rng.NextBool(0.3)) p.push_back(s);
    }
    truth.push_back(t);
    pred.push_back(p);
  }
  eval::PrfScores forward = eval::MicroPrf(truth, pred, /*null=*/99);
  eval::PrfScores swapped = eval::MicroPrf(pred, truth, /*null=*/99);
  EXPECT_GE(forward.f1, 0.0);
  EXPECT_LE(forward.f1, 1.0);
  // Swapping truth and prediction swaps precision and recall, keeps F1.
  EXPECT_DOUBLE_EQ(forward.precision, swapped.recall);
  EXPECT_DOUBLE_EQ(forward.recall, swapped.precision);
  EXPECT_NEAR(forward.f1, swapped.f1, 1e-12);
}

TEST_P(MetricsPropertyTest, SelfPredictionIsPerfectOrEmpty) {
  Rng rng(GetParam());
  std::vector<std::vector<int>> labels;
  bool any = false;
  for (int c = 0; c < 20; ++c) {
    std::vector<int> l;
    for (int s = 0; s < 4; ++s) {
      if (rng.NextBool(0.4)) {
        l.push_back(s);
        any = true;
      }
    }
    labels.push_back(l);
  }
  eval::PrfScores s = eval::MicroPrf(labels, labels, 99);
  if (any) {
    EXPECT_DOUBLE_EQ(s.f1, 1.0);
  } else {
    EXPECT_DOUBLE_EQ(s.f1, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsPropertyTest,
                         ::testing::Values(100, 200, 300, 400));

// ---- dataset generation properties ---------------------------------------------------

class DatasetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DatasetPropertyTest, StructuralInvariants) {
  data::DatasetProfile profile = data::DatasetProfile::GitLike(25);
  profile.seed = GetParam();
  data::Dataset ds = data::GenerateDataset(profile);
  const auto& reg = data::SemanticTypeRegistry::Default();
  EXPECT_EQ(ds.tables.size(), 25u);
  for (const auto& t : ds.tables) {
    EXPECT_FALSE(t.name.empty());
    EXPECT_GE(static_cast<int>(t.columns.size()), profile.min_columns);
    EXPECT_LE(static_cast<int>(t.columns.size()), profile.max_columns);
    for (const auto& c : t.columns) {
      EXPECT_FALSE(c.name.empty());
      EXPECT_FALSE(c.sql_type.empty());
      EXPECT_EQ(static_cast<int>(c.values.size()), t.num_rows);
      EXPECT_FALSE(c.labels.empty());
      for (int l : c.labels) {
        EXPECT_GE(l, 0);
        EXPECT_LT(l, reg.size());
      }
    }
  }
  EXPECT_EQ(ds.train.size() + ds.valid.size() + ds.test.size(),
            ds.tables.size());
}

TEST_P(DatasetPropertyTest, NullColumnsOnlyCarryNullLabel) {
  data::DatasetProfile profile = data::DatasetProfile::GitLike(25);
  profile.seed = GetParam();
  data::Dataset ds = data::GenerateDataset(profile);
  const auto& reg = data::SemanticTypeRegistry::Default();
  for (const auto& t : ds.tables) {
    for (const auto& c : t.columns) {
      bool has_null = false;
      for (int l : c.labels) has_null = has_null || l == reg.null_type_id();
      if (has_null) {
        EXPECT_EQ(c.labels.size(), 1u)
            << "type:null must be exclusive, column " << c.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatasetPropertyTest,
                         ::testing::Values(1001, 1002, 1003, 1004, 1005));

}  // namespace
}  // namespace taste
