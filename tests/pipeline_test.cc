// Tests for the pipelined scheduler (Algorithm 1): correctness parity with
// sequential execution, stage-order safety under concurrency, and the
// wall-clock benefit of overlapping I/O with inference.

#include <gtest/gtest.h>

#include "data/table_generator.h"
#include "pipeline/scheduler.h"

namespace taste::pipeline {
namespace {

struct Env {
  data::Dataset dataset;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer;
  std::unique_ptr<model::AdtdModel> model;
  std::unique_ptr<clouddb::SimulatedDatabase> db;
  std::vector<std::string> table_names;

  static Env Make(int tables, double time_scale) {
    Env e;
    e.dataset = data::GenerateDataset(data::DatasetProfile::WikiLike(tables));
    text::WordPieceTrainer trainer({.vocab_size = 400});
    for (const auto& d : data::BuildCorpusDocuments(e.dataset)) {
      trainer.AddDocument(d);
    }
    e.tokenizer = std::make_unique<text::WordPieceTokenizer>(trainer.Train());
    model::AdtdConfig cfg = model::AdtdConfig::Tiny(
        e.tokenizer->vocab().size(),
        data::SemanticTypeRegistry::Default().size());
    Rng rng(11);
    e.model = std::make_unique<model::AdtdModel>(cfg, rng);
    clouddb::CostModel cost;
    cost.time_scale = time_scale;
    e.db = std::make_unique<clouddb::SimulatedDatabase>(cost);
    TASTE_CHECK(e.db->IngestDataset(e.dataset).ok());
    for (const auto& t : e.dataset.tables) e.table_names.push_back(t.name);
    return e;
  }
};

TEST(PipelineTest, SequentialProcessesAllTables) {
  Env e = Env::Make(8, 0.0);
  core::TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  PipelineExecutor exec(&det, e.db.get(), {.pipelined = false});
  auto res = exec.Run(e.table_names);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->size(), e.table_names.size());
  EXPECT_EQ(exec.stats().tables_processed, 8);
}

TEST(PipelineTest, PipelinedProcessesAllTables) {
  Env e = Env::Make(8, 0.0);
  core::TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  PipelineExecutor exec(&det, e.db.get(), {.pipelined = true});
  auto res = exec.Run(e.table_names);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), e.table_names.size());
  // Results returned in input order with complete per-column output.
  for (size_t i = 0; i < res->size(); ++i) {
    EXPECT_EQ((*res)[i].table_name, e.table_names[i]);
    EXPECT_EQ((*res)[i].columns.size(),
              e.dataset.tables[i].columns.size());
  }
}

TEST(PipelineTest, PipelinedMatchesSequentialPredictions) {
  Env e = Env::Make(10, 0.0);
  core::TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  PipelineExecutor seq(&det, e.db.get(), {.pipelined = false});
  auto a = seq.Run(e.table_names);
  PipelineExecutor pip(&det, e.db.get(), {.pipelined = true});
  auto b = pip.Run(e.table_names);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    ASSERT_EQ((*a)[i].columns.size(), (*b)[i].columns.size());
    for (size_t c = 0; c < (*a)[i].columns.size(); ++c) {
      EXPECT_EQ((*a)[i].columns[c].admitted_types,
                (*b)[i].columns[c].admitted_types)
          << e.table_names[i] << " col " << c;
    }
    EXPECT_EQ((*a)[i].columns_scanned, (*b)[i].columns_scanned);
  }
}

TEST(PipelineTest, RunOutputByteIdenticalToDirectDetection) {
  // The executor's per-worker ExecContexts (buffer pool + structural
  // no-grad) must not perturb a single bit of the predictions relative to
  // calling the detector directly with no context at all.
  Env e = Env::Make(6, 0.0);
  core::TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  PipelineExecutor exec(&det, e.db.get(), {.pipelined = true});
  auto got = exec.Run(e.table_names);
  ASSERT_TRUE(got.ok());
  auto conn = e.db->Connect();
  for (size_t i = 0; i < e.table_names.size(); ++i) {
    auto want = det.DetectTable(conn.get(), e.table_names[i]);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(want->columns.size(), (*got)[i].columns.size());
    for (size_t c = 0; c < want->columns.size(); ++c) {
      const auto& w = want->columns[c];
      const auto& g = (*got)[i].columns[c];
      EXPECT_EQ(w.admitted_types, g.admitted_types);
      ASSERT_EQ(w.probabilities.size(), g.probabilities.size());
      for (size_t p = 0; p < w.probabilities.size(); ++p) {
        EXPECT_EQ(w.probabilities[p], g.probabilities[p])
            << e.table_names[i] << " col " << c << " prob " << p;
      }
    }
  }
}

TEST(PipelineTest, UnknownTableSurfacesError) {
  Env e = Env::Make(4, 0.0);
  core::TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  PipelineExecutor exec(&det, e.db.get(), {.pipelined = true});
  auto names = e.table_names;
  names.push_back("ghost_table");
  auto res = exec.Run(names);
  EXPECT_FALSE(res.ok());
}

TEST(PipelineTest, EmptyBatchIsFine) {
  Env e = Env::Make(2, 0.0);
  core::TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  PipelineExecutor exec(&det, e.db.get(), {.pipelined = true});
  auto res = exec.Run({});
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->empty());
}

TEST(PipelineTest, StatsCountP2Tables) {
  Env e = Env::Make(6, 0.0);
  // Untrained model -> every table goes to P2.
  core::TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  PipelineExecutor exec(&det, e.db.get(), {.pipelined = true});
  ASSERT_TRUE(exec.Run(e.table_names).ok());
  EXPECT_EQ(exec.stats().tables_entered_p2, 6);
  // Privacy mode -> none.
  core::TasteDetector no_p2(e.model.get(), e.tokenizer.get(),
                            {.enable_p2 = false});
  PipelineExecutor exec2(&no_p2, e.db.get(), {.pipelined = true});
  ASSERT_TRUE(exec2.Run(e.table_names).ok());
  EXPECT_EQ(exec2.stats().tables_entered_p2, 0);
}

TEST(PipelineTest, PipeliningReducesWallClockWithRealLatency) {
  // With real (scaled) network latency, overlapping prep with inference
  // must beat strictly sequential execution. This is Fig. 4's
  // "TASTE w/o pipelining" comparison in miniature.
  Env e = Env::Make(10, 0.3);  // latency realized at 30% scale
  core::TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  PipelineExecutor seq(&det, e.db.get(), {.pipelined = false});
  ASSERT_TRUE(seq.Run(e.table_names).ok());
  double seq_ms = seq.stats().wall_ms;
  PipelineExecutor pip(&det, e.db.get(),
                       {.prep_threads = 2, .infer_threads = 2});
  ASSERT_TRUE(pip.Run(e.table_names).ok());
  double pip_ms = pip.stats().wall_ms;
  EXPECT_LT(pip_ms, seq_ms * 0.95)
      << "sequential " << seq_ms << "ms, pipelined " << pip_ms << "ms";
}

TEST(PipelineTest, LedgerCountsIndependentOfExecutionMode) {
  Env e = Env::Make(6, 0.0);
  core::TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  PipelineExecutor seq(&det, e.db.get(), {.pipelined = false});
  e.db->ledger().Reset();
  ASSERT_TRUE(seq.Run(e.table_names).ok());
  auto seq_snap = e.db->ledger().snapshot();
  PipelineExecutor pip(&det, e.db.get(), {.pipelined = true});
  e.db->ledger().Reset();
  ASSERT_TRUE(pip.Run(e.table_names).ok());
  auto pip_snap = e.db->ledger().snapshot();
  EXPECT_EQ(seq_snap.scanned_columns, pip_snap.scanned_columns);
  EXPECT_EQ(seq_snap.metadata_columns, pip_snap.metadata_columns);
}

}  // namespace
}  // namespace taste::pipeline
