// Reverse-mode autodiff tests: every differentiable op is validated against
// central-difference numeric gradients, plus end-to-end training sanity
// checks with the optimizers.

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "tensor/tensor.h"

namespace taste::tensor {
namespace {

/// Checks d(fn(x))/dx against central differences for every element of
/// every input. `fn` must return a one-element tensor.
void CheckGradients(std::vector<Tensor> inputs,
                    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
                    float eps = 1e-3f, float tol = 2e-2f) {
  Tensor loss = fn(inputs);
  ASSERT_EQ(loss.numel(), 1);
  loss.Backward();
  for (size_t t = 0; t < inputs.size(); ++t) {
    Tensor& x = inputs[t];
    if (!x.requires_grad()) continue;
    const std::vector<float> analytic = x.grad();
    for (int64_t i = 0; i < x.numel(); ++i) {
      float orig = x.data()[i];
      x.data()[i] = orig + eps;
      float up = fn(inputs).item();
      x.data()[i] = orig - eps;
      float down = fn(inputs).item();
      x.data()[i] = orig;
      float numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(analytic[i], numeric, tol)
          << "input " << t << " element " << i;
    }
  }
}

TEST(AutogradTest, AddSubMulGrads) {
  Rng rng(1);
  Tensor a = Tensor::Randn({2, 3}, rng, 1.0f, true);
  Tensor b = Tensor::Randn({2, 3}, rng, 1.0f, true);
  CheckGradients({a, b}, [](const std::vector<Tensor>& in) {
    return SumAll(Mul(Add(in[0], in[1]), Sub(in[0], in[1])));
  });
}

TEST(AutogradTest, ScaleSquareGrads) {
  Rng rng(2);
  Tensor a = Tensor::Randn({4}, rng, 1.0f, true);
  CheckGradients({a}, [](const std::vector<Tensor>& in) {
    return SumAll(Square(Scale(in[0], 3.0f)));
  });
}

TEST(AutogradTest, LogReciprocalGrads) {
  Rng rng(3);
  Tensor a = Tensor::Uniform({4}, rng, 0.5f, 2.0f, true);
  CheckGradients({a}, [](const std::vector<Tensor>& in) {
    return SumAll(Add(Log(in[0]), Reciprocal(in[0])));
  });
}

TEST(AutogradTest, ActivationGrads) {
  Rng rng(4);
  Tensor a = Tensor::Randn({6}, rng, 1.0f, true);
  CheckGradients({a}, [](const std::vector<Tensor>& in) {
    return SumAll(Gelu(in[0]));
  });
  Tensor b = Tensor::Randn({6}, rng, 1.0f, true);
  CheckGradients({b}, [](const std::vector<Tensor>& in) {
    return SumAll(Sigmoid(in[0]));
  });
  Tensor c = Tensor::Randn({6}, rng, 1.0f, true);
  CheckGradients({c}, [](const std::vector<Tensor>& in) {
    return SumAll(Tanh(in[0]));
  });
}

TEST(AutogradTest, MatMulGrads) {
  Rng rng(5);
  Tensor a = Tensor::Randn({3, 4}, rng, 0.5f, true);
  Tensor b = Tensor::Randn({4, 2}, rng, 0.5f, true);
  CheckGradients({a, b}, [](const std::vector<Tensor>& in) {
    return SumAll(Square(MatMul(in[0], in[1])));
  });
}

TEST(AutogradTest, BatchedMatMulGrads) {
  Rng rng(6);
  Tensor a = Tensor::Randn({2, 2, 3}, rng, 0.5f, true);
  Tensor b = Tensor::Randn({2, 3, 2}, rng, 0.5f, true);
  CheckGradients({a, b}, [](const std::vector<Tensor>& in) {
    return SumAll(Square(BatchedMatMul(in[0], in[1])));
  });
}

TEST(AutogradTest, TransposeReshapePermuteGrads) {
  Rng rng(7);
  Tensor a = Tensor::Randn({2, 3, 4}, rng, 0.5f, true);
  CheckGradients({a}, [](const std::vector<Tensor>& in) {
    Tensor t = TransposeLast2(in[0]);            // (2,4,3)
    Tensor p = Permute3(t, {2, 0, 1});           // (3,2,4)
    Tensor r = Reshape(p, {6, 4});
    return SumAll(Square(r));
  });
}

TEST(AutogradTest, SoftmaxGrads) {
  Rng rng(8);
  Tensor a = Tensor::Randn({2, 5}, rng, 1.0f, true);
  // Weighted sum to make gradient nontrivial.
  Tensor w = Tensor::FromVector({2, 5}, {1, -1, 2, 0.5f, 3, -2, 1, 0, 1, -1});
  CheckGradients({a}, [w](const std::vector<Tensor>& in) {
    return SumAll(Mul(Softmax(in[0]), w));
  });
}

TEST(AutogradTest, LayerNormGrads) {
  Rng rng(9);
  Tensor x = Tensor::Randn({3, 4}, rng, 1.0f, true);
  Tensor gamma = Tensor::Uniform({4}, rng, 0.5f, 1.5f, true);
  Tensor beta = Tensor::Randn({4}, rng, 0.5f, true);
  Tensor w = Tensor::Randn({3, 4}, rng);
  CheckGradients({x, gamma, beta}, [w](const std::vector<Tensor>& in) {
    return SumAll(Mul(LayerNorm(in[0], in[1], in[2]), w));
  }, 1e-3f, 5e-2f);
}

TEST(AutogradTest, AddBiasGrads) {
  Rng rng(10);
  Tensor x = Tensor::Randn({3, 4}, rng, 1.0f, true);
  Tensor b = Tensor::Randn({4}, rng, 1.0f, true);
  CheckGradients({x, b}, [](const std::vector<Tensor>& in) {
    return SumAll(Square(AddBias(in[0], in[1])));
  });
}

TEST(AutogradTest, AddBroadcastMatGrads) {
  Rng rng(11);
  Tensor x = Tensor::Randn({2, 3, 3}, rng, 1.0f, true);
  Tensor m = Tensor::Randn({3, 3}, rng, 1.0f, true);
  CheckGradients({x, m}, [](const std::vector<Tensor>& in) {
    return SumAll(Square(AddBroadcastMat(in[0], in[1])));
  });
}

TEST(AutogradTest, EmbeddingLookupGrads) {
  Rng rng(12);
  Tensor w = Tensor::Randn({5, 3}, rng, 1.0f, true);
  std::vector<int> ids = {0, 3, 3, 1};
  CheckGradients({w}, [ids](const std::vector<Tensor>& in) {
    return SumAll(Square(EmbeddingLookup(in[0], ids)));
  });
}

TEST(AutogradTest, GatherSliceConcatGrads) {
  Rng rng(13);
  Tensor a = Tensor::Randn({4, 3}, rng, 1.0f, true);
  Tensor b = Tensor::Randn({2, 3}, rng, 1.0f, true);
  CheckGradients({a, b}, [](const std::vector<Tensor>& in) {
    Tensor g = GatherRows(in[0], {1, 1, 3});
    Tensor s = SliceRows(in[0], 0, 2);
    Tensor cat = ConcatRows({g, s, in[1]});
    Tensor cc = ConcatCols(SliceRows(cat, 0, 2), SliceRows(cat, 2, 4));
    return SumAll(Square(cc));
  });
}

TEST(AutogradTest, BceWithLogitsGrads) {
  Rng rng(14);
  Tensor z = Tensor::Randn({2, 3}, rng, 1.0f, true);
  Tensor y = Tensor::FromVector({2, 3}, {1, 0, 1, 0, 0, 1});
  CheckGradients({z}, [y](const std::vector<Tensor>& in) {
    return BceWithLogits(in[0], y);
  });
}

TEST(AutogradTest, CrossEntropyGrads) {
  Rng rng(15);
  Tensor z = Tensor::Randn({3, 4}, rng, 1.0f, true);
  std::vector<int> t = {2, -1, 0};
  CheckGradients({z}, [t](const std::vector<Tensor>& in) {
    return CrossEntropyWithLogits(in[0], t, -1);
  });
}

TEST(AutogradTest, GradAccumulatesOverReuse) {
  // y = x*x computed via two paths sharing x: dy/dx must sum contributions.
  Tensor x = Tensor::Scalar(3.0f, true);
  Tensor y = Mul(x, x);
  y.Backward();
  EXPECT_NEAR(x.grad()[0], 6.0f, 1e-5f);
}

TEST(AutogradTest, DiamondGraph) {
  // z = (x+x) * (x*2): dz/dx = 8x.
  Tensor x = Tensor::Scalar(1.5f, true);
  Tensor z = Mul(Add(x, x), Scale(x, 2.0f));
  z.Backward();
  EXPECT_NEAR(x.grad()[0], 8.0f * 1.5f, 1e-4f);
}

TEST(AutogradTest, NoGradGuardSkipsTape) {
  Tensor x = Tensor::Scalar(2.0f, true);
  Tensor y;
  {
    NoGradGuard guard;
    y = Square(x);
  }
  EXPECT_FALSE(y.requires_grad());
  EXPECT_TRUE(GradEnabled());
}

TEST(AutogradTest, StopsAtNonRequiresGradLeaves) {
  Tensor x = Tensor::Scalar(2.0f, /*requires_grad=*/false);
  Tensor w = Tensor::Scalar(3.0f, /*requires_grad=*/true);
  Tensor y = Mul(x, w);
  y.Backward();
  EXPECT_NEAR(w.grad()[0], 2.0f, 1e-6f);
  EXPECT_TRUE(x.grad().empty() || x.grad()[0] == 0.0f);
}

TEST(AutogradTest, DeepChainDoesNotOverflowStack) {
  Tensor x = Tensor::Scalar(1.0f, true);
  Tensor y = x;
  for (int i = 0; i < 5000; ++i) y = AddScalar(y, 0.0f);
  Tensor loss = SumAll(y);
  loss.Backward();
  EXPECT_NEAR(x.grad()[0], 1.0f, 1e-5f);
}

TEST(AutogradTest, GraphsAreFreedAfterBackward) {
  // Regression: backward closures must not keep their own node alive (a
  // shared_ptr self-capture once leaked every training step's graph).
  // Weak-pointer check: the graph root must die when the last Tensor
  // handle goes away.
  std::weak_ptr<internal::TensorImpl> weak_root;
  Tensor w = Tensor::Scalar(2.0f, /*requires_grad=*/true);
  {
    Tensor loss = Square(Mul(w, AddScalar(w, 1.0f)));
    weak_root = loss.impl();
    loss.Backward();
  }
  EXPECT_TRUE(weak_root.expired());
}

TEST(AutogradTest, RepeatedTrainingStepsDoNotAccumulateGraphs) {
  // Run many forward/backward/step cycles; every intermediate must be
  // reclaimed (checked via a sampled weak_ptr per iteration).
  Rng rng(30);
  Tensor w = Tensor::Randn({8, 8}, rng, 0.5f, true);
  Adam opt({w}, {.lr = 1e-3f});
  std::vector<std::weak_ptr<internal::TensorImpl>> weak;
  for (int i = 0; i < 50; ++i) {
    Tensor x = Tensor::Randn({4, 8}, rng);
    Tensor loss = MeanAll(Square(MatMul(x, w)));
    weak.push_back(loss.impl());
    loss.Backward();
    opt.Step();
  }
  for (const auto& wp : weak) EXPECT_TRUE(wp.expired());
}

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  Tensor x = Tensor::Scalar(10.0f, true);
  Sgd opt({x}, 0.1f);
  for (int i = 0; i < 200; ++i) {
    Tensor loss = Square(x);
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.item(), 0.0f, 1e-3f);
}

TEST(OptimizerTest, AdamConvergesOnQuadraticBowl) {
  Rng rng(20);
  Tensor w = Tensor::Randn({4}, rng, 2.0f, true);
  Tensor target = Tensor::FromVector({4}, {1, -2, 3, 0.5f});
  Adam opt({w}, {.lr = 0.05f});
  for (int i = 0; i < 500; ++i) {
    Tensor loss = SumAll(Square(Sub(w, target)));
    loss.Backward();
    opt.Step();
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(w.data()[i], target.data()[i], 1e-2f);
  }
}

TEST(OptimizerTest, AdamClipNormBoundsUpdate) {
  Tensor x = Tensor::Scalar(0.0f, true);
  Adam opt({x}, {.lr = 1.0f, .clip_norm = 0.001f});
  Tensor loss = Scale(x, 1e6f);
  loss.Backward();
  opt.Step();
  // With tiny clipped grad, Adam's normalized step is still bounded by lr.
  EXPECT_LE(std::abs(x.item()), 1.0f + 1e-4f);
  EXPECT_EQ(opt.step_count(), 1);
}

TEST(OptimizerTest, WeightDecayShrinksWeights) {
  Tensor x = Tensor::Scalar(1.0f, true);
  Adam opt({x}, {.lr = 0.1f, .weight_decay = 0.5f});
  // Zero loss gradient: only decay acts.
  Tensor loss = Scale(x, 0.0f);
  loss.Backward();
  opt.Step();
  EXPECT_LT(x.item(), 1.0f);
}

TEST(OptimizerTest, LinearRegressionLearns) {
  // Fit y = 2a - b with a small linear model trained by Adam.
  Rng rng(21);
  Tensor w = Tensor::Randn({2, 1}, rng, 0.1f, true);
  Tensor bias = Tensor::Zeros({1}, true);
  Adam opt({w, bias}, {.lr = 0.05f});
  Tensor x = Tensor::FromVector({4, 2}, {1, 0, 0, 1, 1, 1, 2, 1});
  Tensor y = Tensor::FromVector({4, 1}, {2, -1, 1, 3});
  for (int i = 0; i < 800; ++i) {
    Tensor pred = AddBias(MatMul(x, w), bias);
    Tensor loss = MeanAll(Square(Sub(pred, y)));
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(w.data()[0], 2.0f, 0.05f);
  EXPECT_NEAR(w.data()[1], -1.0f, 0.05f);
  EXPECT_NEAR(bias.data()[0], 0.0f, 0.05f);
}

}  // namespace
}  // namespace taste::tensor
