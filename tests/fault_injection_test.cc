// Fault-tolerance tests for the cloud-database serving path: retry policy
// and circuit-breaker primitives, the deterministic FaultInjector, the
// detector's degrade-to-metadata-only fallback, and batch isolation in the
// pipelined executor. Every fault script is seeded/scripted, so each
// scenario replays bit-for-bit.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "clouddb/fault_injector.h"
#include "common/retry.h"
#include "core/taste_detector.h"
#include "data/table_generator.h"
#include "obs/metrics.h"
#include "pipeline/scheduler.h"

namespace taste {
namespace {

// ---------------------------------------------------------------------------
// RetryPolicy / RetryCall

TEST(RetryPolicyTest, BackoffIsCappedExponentialAndDeterministic) {
  RetryPolicy p;
  p.initial_backoff_ms = 10;
  p.max_backoff_ms = 35;
  p.backoff_multiplier = 2.0;
  p.jitter_fraction = 0.25;
  EXPECT_EQ(p.BackoffMillis(1, 7), 0.0);
  for (int attempt = 2; attempt <= 6; ++attempt) {
    double base = attempt == 2 ? 10 : attempt == 3 ? 20 : 35;  // capped
    double b = p.BackoffMillis(attempt, 7);
    EXPECT_GE(b, base * 0.75) << attempt;
    EXPECT_LE(b, base * 1.25) << attempt;
    // Pure function: same (policy, salt, attempt) -> same jitter.
    EXPECT_EQ(b, p.BackoffMillis(attempt, 7));
    // Different salts decorrelate concurrent retry loops.
    EXPECT_NE(b, p.BackoffMillis(attempt, 8));
  }
}

TEST(RetryCallTest, TransientThenSuccess) {
  RetryPolicy p;
  p.max_attempts = 5;
  int calls = 0;
  RetryObservation obs;
  Status st = RetryCall(
      p, /*salt=*/1, /*sleep_ms=*/{},
      [&] {
        ++calls;
        return calls < 3 ? Status::IOError("flaky") : Status::OK();
      },
      &obs);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(obs.attempts, 3);
  EXPECT_EQ(obs.retries, 2);
  EXPECT_FALSE(obs.deadline_miss);
}

TEST(RetryCallTest, PermanentErrorIsNotRetried) {
  RetryPolicy p;
  p.max_attempts = 5;
  int calls = 0;
  Status st = RetryCall(p, 1, {}, [&] {
    ++calls;
    return Status::NotFound("gone");
  });
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(calls, 1);
}

TEST(RetryCallTest, ResultOverloadAndAttemptExhaustion) {
  RetryPolicy p;
  p.max_attempts = 3;
  int calls = 0;
  RetryObservation obs;
  Result<int> r = RetryCall(
      p, 2, {},
      [&]() -> Result<int> {
        ++calls;
        return Status::DeadlineExceeded("slow");
      },
      &obs);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(obs.retries, 2);
}

TEST(RetryCallTest, BackoffBudgetDeadline) {
  RetryPolicy p;
  p.max_attempts = 10;
  p.initial_backoff_ms = 50;
  p.jitter_fraction = 0.0;
  p.per_call_backoff_budget_ms = 120;  // 50 + 100 > 120 -> stop after 2 waits
  int calls = 0;
  RetryObservation obs;
  Status st = RetryCall(p, 3, {}, [&] {
    ++calls;
    return Status::IOError("down");
  }, &obs);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(calls, 2);  // attempt 1, backoff 50, attempt 2, next would break budget
  EXPECT_TRUE(obs.deadline_miss);
}

TEST(RetryPolicyTest, JitterStaysInBoundsAndSpreadsAcrossSalts) {
  RetryPolicy p;
  p.initial_backoff_ms = 10;
  p.max_backoff_ms = 80;
  p.backoff_multiplier = 2.0;
  p.jitter_fraction = 0.2;
  // The multi-process supervisor salts the respawn backoff with the
  // replica id; many concurrent loops must each stay inside the jitter
  // band yet not collapse onto a handful of values (thundering herd).
  for (int attempt = 2; attempt <= 5; ++attempt) {
    const double base = std::min(10.0 * (1 << (attempt - 2)), 80.0);
    double lo = 1e300, hi = -1e300;
    for (uint64_t salt = 0; salt < 512; ++salt) {
      const double b = p.BackoffMillis(attempt, salt);
      EXPECT_GE(b, base * 0.8) << "attempt " << attempt << " salt " << salt;
      EXPECT_LT(b, base * 1.2 + 1e-9)
          << "attempt " << attempt << " salt " << salt;
      EXPECT_EQ(b, p.BackoffMillis(attempt, salt));  // pure function
      lo = std::min(lo, b);
      hi = std::max(hi, b);
    }
    // 512 salts must fill most of the [0.8, 1.2) band, not cluster.
    EXPECT_GT(hi - lo, base * 0.2) << "attempt " << attempt;
  }
  // Zero jitter degenerates to the exact capped exponential.
  p.jitter_fraction = 0.0;
  EXPECT_EQ(p.BackoffMillis(2, 1), p.BackoffMillis(2, 99));
  EXPECT_EQ(p.BackoffMillis(2, 1), 10.0);
}

TEST(RetryCallTest, BudgetExpiringMidBackoffNeverSleepsPastBudget) {
  RetryPolicy p;
  p.max_attempts = 50;
  p.initial_backoff_ms = 40;
  p.backoff_multiplier = 2.0;
  p.jitter_fraction = 0.0;
  p.per_call_backoff_budget_ms = 100;  // 40 fits, 40+80 would overshoot
  double slept = 0.0;
  int calls = 0;
  RetryObservation obs;
  Status st = RetryCall(
      p, /*salt=*/11, [&](double ms) { slept += ms; },
      [&] {
        ++calls;
        return Status::IOError("down");
      },
      &obs);
  EXPECT_FALSE(st.ok());
  // The second backoff (80 ms) would cross the 100 ms budget: the call
  // must give up BEFORE sleeping it, not after.
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(slept, 40.0);
  EXPECT_LE(slept, p.per_call_backoff_budget_ms);
  EXPECT_DOUBLE_EQ(obs.backoff_ms, 40.0);
  EXPECT_TRUE(obs.deadline_miss);

  // A budget smaller than the first backoff: zero sleeping, one retry's
  // worth of attempts never happens.
  p.per_call_backoff_budget_ms = 10;
  slept = 0.0;
  calls = 0;
  st = RetryCall(
      p, 11, [&](double ms) { slept += ms; },
      [&] {
        ++calls;
        return Status::IOError("down");
      },
      &obs);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(slept, 0.0);
  EXPECT_TRUE(obs.deadline_miss);
}

// ---------------------------------------------------------------------------
// CircuitBreaker

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailuresAndShortCircuits) {
  CircuitBreaker breaker({.failure_threshold = 3,
                          .open_cooldown_rejections = 2});
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(breaker.Allow());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1);
  EXPECT_FALSE(breaker.Allow());  // rejection 1
  EXPECT_EQ(breaker.short_circuits(), 1);
}

TEST(CircuitBreakerTest, HalfOpenProbeRecovery) {
  CircuitBreaker breaker({.failure_threshold = 2,
                          .open_cooldown_rejections = 2});
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());  // cooldown elapsed -> half-open
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.Allow());   // the probe
  EXPECT_FALSE(breaker.Allow());  // only one probe in flight
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.trips(), 1);
}

TEST(CircuitBreakerTest, FailedProbeReopens) {
  CircuitBreaker breaker({.failure_threshold = 1,
                          .open_cooldown_rejections = 1});
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow());  // -> half-open
  EXPECT_TRUE(breaker.Allow());   // probe
  breaker.RecordFailure();        // probe fails
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2);
}

TEST(CircuitBreakerTest, WouldAllowIsAPureObserver) {
  // Regression for the quarantine/readmit split: serving-path checks read
  // WouldAllow() and must consume NOTHING — no cooldown rejections, no
  // half-open probe slot. Only the health scorer's Allow() advances state.
  CircuitBreaker breaker({.failure_threshold = 1,
                          .open_cooldown_rejections = 2});
  EXPECT_TRUE(breaker.WouldAllow());  // closed

  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  // Any number of observer reads leaves the breaker open: the cooldown is
  // measured in Allow() rejections, and none happened.
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(breaker.WouldAllow());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.short_circuits(), 0);

  // The owner's two real rejections reach half-open; observers see the
  // free probe slot without claiming it.
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(breaker.WouldAllow());
  EXPECT_TRUE(breaker.Allow());       // the probe slot is still available
  EXPECT_FALSE(breaker.WouldAllow()); // now it is in flight
  breaker.RecordSuccess();
  EXPECT_TRUE(breaker.WouldAllow());
}

// ---------------------------------------------------------------------------
// FaultInjector

TEST(FaultInjectorTest, DecisionsAreDeterministicAcrossInstances) {
  clouddb::FaultConfig cfg;
  cfg.seed = 99;
  cfg.timeout_prob = 0.3;
  cfg.partial_scan_prob = 0.2;
  cfg.latency_spike_prob = 0.2;
  clouddb::FaultInjector a(cfg), b(cfg);
  for (int i = 0; i < 200; ++i) {
    std::string table = "t" + std::to_string(i % 7);
    auto da = a.Decide(clouddb::DbOp::kScan, table, 0.0);
    auto db = b.Decide(clouddb::DbOp::kScan, table, 0.0);
    EXPECT_EQ(da.kind, db.kind);
    EXPECT_EQ(da.status.code(), db.status.code());
    EXPECT_EQ(da.keep_fraction, db.keep_fraction);
  }
  EXPECT_EQ(a.stats().faults(), b.stats().faults());
  EXPECT_GT(a.stats().faults(), 0);
}

TEST(FaultInjectorTest, ProbabilitiesRoughlyRespected) {
  clouddb::FaultConfig cfg;
  cfg.seed = 7;
  cfg.timeout_prob = 0.10;
  clouddb::FaultInjector injector(cfg);
  int faults = 0;
  const int kCalls = 2000;
  for (int i = 0; i < kCalls; ++i) {
    auto d = injector.Decide(clouddb::DbOp::kScan,
                             "table_" + std::to_string(i), 0.0);
    if (!d.status.ok()) ++faults;
  }
  double rate = static_cast<double>(faults) / kCalls;
  EXPECT_GT(rate, 0.06);
  EXPECT_LT(rate, 0.14);
}

TEST(FaultInjectorTest, ScriptedWindowFiresOnVirtualClockOnly) {
  clouddb::FaultConfig cfg;
  cfg.windows.push_back({.begin_ms = 100,
                         .end_ms = 200,
                         .op = clouddb::DbOp::kMetadata,
                         .kind = clouddb::FaultKind::kTimeout,
                         .table = ""});
  clouddb::FaultInjector injector(cfg);
  EXPECT_TRUE(injector.Decide(clouddb::DbOp::kMetadata, "t", 50).status.ok());
  EXPECT_EQ(injector.Decide(clouddb::DbOp::kMetadata, "t", 150).status.code(),
            StatusCode::kDeadlineExceeded);
  // Scan ops are untouched by a metadata window.
  EXPECT_TRUE(injector.Decide(clouddb::DbOp::kScan, "t", 150).status.ok());
  EXPECT_TRUE(injector.Decide(clouddb::DbOp::kMetadata, "t", 250).status.ok());
}

TEST(FaultInjectorTest, UnavailableTableIsPermanentForScans) {
  clouddb::FaultConfig cfg;
  cfg.unavailable_tables = {"dead"};
  clouddb::FaultInjector injector(cfg);
  EXPECT_EQ(injector.Decide(clouddb::DbOp::kScan, "dead", 0).status.code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(injector.Decide(clouddb::DbOp::kMetadata, "dead", 0).status.ok());
  EXPECT_TRUE(injector.Decide(clouddb::DbOp::kScan, "alive", 0).status.ok());
  clouddb::FaultConfig all = cfg;
  all.unavailable_all_ops = true;
  clouddb::FaultInjector injector2(all);
  EXPECT_EQ(injector2.Decide(clouddb::DbOp::kMetadata, "dead", 0).status.code(),
            StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// Database integration + detector degradation

struct Env {
  data::Dataset dataset;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer;
  std::unique_ptr<model::AdtdModel> model;
  std::unique_ptr<clouddb::SimulatedDatabase> db;
  std::vector<std::string> table_names;

  static Env Make(int tables) {
    Env e;
    e.dataset = data::GenerateDataset(data::DatasetProfile::WikiLike(tables));
    text::WordPieceTrainer trainer({.vocab_size = 400});
    for (const auto& d : data::BuildCorpusDocuments(e.dataset)) {
      trainer.AddDocument(d);
    }
    e.tokenizer = std::make_unique<text::WordPieceTokenizer>(trainer.Train());
    model::AdtdConfig cfg = model::AdtdConfig::Tiny(
        e.tokenizer->vocab().size(),
        data::SemanticTypeRegistry::Default().size());
    Rng rng(21);
    e.model = std::make_unique<model::AdtdModel>(cfg, rng);
    clouddb::CostModel cost;
    cost.time_scale = 0.0;
    e.db = std::make_unique<clouddb::SimulatedDatabase>(cost);
    TASTE_CHECK(e.db->IngestDataset(e.dataset).ok());
    for (const auto& t : e.dataset.tables) e.table_names.push_back(t.name);
    return e;
  }

  void InstallFaults(clouddb::FaultConfig cfg) {
    db->SetFaultInjector(
        std::make_shared<clouddb::FaultInjector>(std::move(cfg)));
  }
};

core::TasteOptions ResilientOptions() {
  core::TasteOptions o;
  o.resilience.enabled = true;
  o.resilience.retry.max_attempts = 5;
  return o;
}

TEST(DatabaseFaultTest, TryConnectSurfacesConnectFailures) {
  Env e = Env::Make(3);
  clouddb::FaultConfig cfg;
  cfg.connect_failure_prob = 1.0;
  e.InstallFaults(cfg);
  auto conn = e.db->TryConnect();
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kIOError);
  EXPECT_TRUE(IsTransient(conn.status()));
  // The infallible legacy path still works (fallback for pools).
  EXPECT_NE(e.db->Connect(), nullptr);
}

TEST(DatabaseFaultTest, PartialScanReturnsTruncatedRows) {
  Env e = Env::Make(3);
  clouddb::FaultConfig cfg;
  cfg.partial_scan_prob = 1.0;
  cfg.partial_scan_keep_fraction = 0.4;
  e.InstallFaults(cfg);
  auto conn = e.db->Connect();
  const auto& table = e.dataset.tables[0];
  auto full_rows = std::min<int64_t>(20, table.num_rows);
  auto res = conn->ScanColumns(table.name, {table.columns[0].name},
                               {.limit_rows = 20});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ((*res)[0].size(),
            static_cast<size_t>(std::max<int64_t>(
                1, static_cast<int64_t>(full_rows * 0.4))));
}

TEST(DetectorResilienceTest, TransientMetadataFaultRetriedToSuccess) {
  Env e = Env::Make(3);
  // Metadata queries time out while the virtual clock is under 60 ms.
  // Connect() costs 20 ms, and each failed query advances the clock by
  // query_ms + timeout_wait_ms = 30 ms: attempts land at t = 20, 50, 80,
  // so the 3rd attempt succeeds. Fully scripted, no dice.
  clouddb::FaultConfig cfg;
  cfg.timeout_wait_ms = 25.0;
  cfg.windows.push_back({.begin_ms = 0,
                         .end_ms = 60,
                         .op = clouddb::DbOp::kMetadata,
                         .kind = clouddb::FaultKind::kTimeout,
                         .table = e.table_names[0]});
  e.InstallFaults(cfg);
  core::TasteDetector det(e.model.get(), e.tokenizer.get(),
                          ResilientOptions());
  auto conn = e.db->Connect();
  auto res = det.DetectTable(conn.get(), e.table_names[0]);
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(res->retries, 2);
  EXPECT_EQ(res->degraded_columns, 0);
  for (const auto& col : res->columns) {
    EXPECT_EQ(col.provenance, core::ResultProvenance::kFull);
  }
}

TEST(DetectorResilienceTest, WithoutResilienceTransientFaultIsFatal) {
  Env e = Env::Make(3);
  clouddb::FaultConfig cfg;
  cfg.windows.push_back({.begin_ms = 0,
                         .end_ms = 40,
                         .op = clouddb::DbOp::kMetadata,
                         .kind = clouddb::FaultKind::kTimeout,
                         .table = e.table_names[0]});
  e.InstallFaults(cfg);
  core::TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  auto conn = e.db->Connect();
  auto res = det.DetectTable(conn.get(), e.table_names[0]);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(DetectorResilienceTest, DegradedColumnsMatchP1OnlyBitForBit) {
  Env e = Env::Make(5);
  const std::string dead = e.table_names[1];
  clouddb::FaultConfig cfg;
  cfg.unavailable_tables = {dead};  // scans fail permanently, metadata OK
  e.InstallFaults(cfg);
  core::TasteDetector resilient(e.model.get(), e.tokenizer.get(),
                                ResilientOptions());
  auto conn = e.db->Connect();
  auto degraded = resilient.DetectTable(conn.get(), dead);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_GT(degraded->degraded_columns, 0);
  EXPECT_EQ(degraded->columns_scanned, 0);

  // Reference: the same model in metadata-only mode (P2 disabled) against
  // a fault-free database.
  Env clean = Env::Make(5);
  core::TasteOptions p1_only;
  p1_only.enable_p2 = false;
  core::TasteDetector reference(clean.model.get(), clean.tokenizer.get(),
                                p1_only);
  auto ref_conn = clean.db->Connect();
  auto ref = reference.DetectTable(ref_conn.get(), dead);
  ASSERT_TRUE(ref.ok());

  ASSERT_EQ(degraded->columns.size(), ref->columns.size());
  for (size_t c = 0; c < degraded->columns.size(); ++c) {
    const auto& dc = degraded->columns[c];
    const auto& rc = ref->columns[c];
    EXPECT_EQ(dc.probabilities, rc.probabilities) << "col " << c;
    EXPECT_EQ(dc.admitted_types, rc.admitted_types) << "col " << c;
    EXPECT_FALSE(dc.went_to_p2);
    if (dc.provenance == core::ResultProvenance::kDegradedMetadataOnly) {
      // Every degraded column is one P1 left uncertain.
      EXPECT_GT(dc.probabilities.size(), 0u);
    }
  }
}

TEST(DetectorResilienceTest, DegradedAdmitThresholdMatchesPrivacyModeRule) {
  Env e = Env::Make(4);
  const std::string dead = e.table_names[2];
  clouddb::FaultConfig cfg;
  cfg.unavailable_tables = {dead};
  e.InstallFaults(cfg);
  core::TasteOptions opts = ResilientOptions();
  opts.resilience.degraded_admit_threshold = 0.5;  // Table 4 admission rule
  core::TasteDetector det(e.model.get(), e.tokenizer.get(), opts);
  auto conn = e.db->Connect();
  auto res = det.DetectTable(conn.get(), dead);
  ASSERT_TRUE(res.ok());

  // Reference: alpha = beta = 0.5 (the paper's privacy mode) on clean data.
  Env clean = Env::Make(4);
  core::TasteOptions privacy;
  privacy.alpha = 0.5;
  privacy.beta = 0.5;
  core::TasteDetector reference(clean.model.get(), clean.tokenizer.get(),
                                privacy);
  auto ref_conn = clean.db->Connect();
  auto ref = reference.DetectTable(ref_conn.get(), dead);
  ASSERT_TRUE(ref.ok());
  ASSERT_EQ(res->columns.size(), ref->columns.size());
  for (size_t c = 0; c < res->columns.size(); ++c) {
    if (res->columns[c].provenance ==
        core::ResultProvenance::kDegradedMetadataOnly) {
      EXPECT_EQ(res->columns[c].admitted_types,
                ref->columns[c].admitted_types)
          << "col " << c;
    }
  }
}

TEST(DetectorResilienceTest, BreakerOpensAndStopsBurningRetryBudget) {
  Env e = Env::Make(4);
  const std::string dead = e.table_names[0];
  clouddb::FaultConfig cfg;
  cfg.unavailable_tables = {dead};
  cfg.unavailable_all_ops = true;  // metadata fails too -> no success resets
  e.InstallFaults(cfg);
  core::TasteOptions opts = ResilientOptions();
  opts.resilience.breaker.failure_threshold = 2;
  opts.resilience.breaker.open_cooldown_rejections = 1000;  // stay open
  core::TasteDetector det(e.model.get(), e.tokenizer.get(), opts);
  auto conn = e.db->Connect();
  // Unavailable is permanent -> each DetectTable records exactly one
  // breaker failure (no retries); the 2nd failure opens the breaker.
  EXPECT_FALSE(det.DetectTable(conn.get(), dead).ok());
  EXPECT_FALSE(det.DetectTable(conn.get(), dead).ok());
  ASSERT_NE(det.breakers(), nullptr);
  EXPECT_EQ(det.breakers()->TotalTrips(), 1);
  auto decisions_before = e.db->fault_injector()->stats().decisions;
  // Now even the P1 metadata query is short-circuited: no DB traffic.
  auto res = det.DetectTable(conn.get(), dead);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(e.db->fault_injector()->stats().decisions, decisions_before);
  EXPECT_EQ(det.breakers()->TotalTrips(), 1);
}

TEST(DetectorResilienceTest, BreakerHalfOpenRecoveryEndToEnd) {
  Env e = Env::Make(4);
  const std::string flaky = e.table_names[0];
  // Scans fail while the virtual clock is early; once enough failed
  // queries advance the clock past the window, the table heals.
  clouddb::FaultConfig cfg;
  cfg.timeout_wait_ms = 25.0;
  cfg.windows.push_back({.begin_ms = 0,
                         .end_ms = 400,
                         .op = clouddb::DbOp::kScan,
                         .kind = clouddb::FaultKind::kTimeout,
                         .table = flaky});
  e.InstallFaults(cfg);
  core::TasteOptions opts = ResilientOptions();
  opts.resilience.retry.max_attempts = 3;
  opts.resilience.breaker.failure_threshold = 1;
  opts.resilience.breaker.open_cooldown_rejections = 1;
  core::TasteDetector det(e.model.get(), e.tokenizer.get(), opts);
  auto conn = e.db->Connect();
  // 1st call: 3 scan attempts fail (clock 0->90), breaker opens, columns
  // degrade to metadata-only.
  auto first = det.DetectTable(conn.get(), flaky);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->degraded_columns, 0);
  ASSERT_NE(det.breakers(), nullptr);
  EXPECT_EQ(det.breakers()->TotalTrips(), 1);
  // 2nd call: metadata Allow() is the open-state rejection (cooldown 1) ->
  // short-circuit; the table fails fast without touching the database.
  EXPECT_FALSE(det.DetectTable(conn.get(), flaky).ok());
  // Burn the virtual clock past the window with healthy-table traffic.
  core::TasteDetector other(e.model.get(), e.tokenizer.get(),
                            ResilientOptions());
  while (e.db->VirtualNowMs() < 400) {
    ASSERT_TRUE(other.DetectTable(conn.get(), e.table_names[1]).ok());
  }
  // 3rd call: half-open probe (metadata) succeeds, breaker closes, and the
  // scan now works -> full-provenance result.
  auto healed = det.DetectTable(conn.get(), flaky);
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_EQ(healed->degraded_columns, 0);
  EXPECT_GT(healed->columns_scanned, 0);
  EXPECT_EQ(det.breakers()->TotalTrips(), 1);  // no re-trip
}

// ---------------------------------------------------------------------------
// Pipeline: batch isolation, partial results, the acceptance scenario

TEST(PipelineFaultTest, GhostTableYieldsPartialBatchNotTotalFailure) {
  Env e = Env::Make(4);
  core::TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  pipeline::PipelineExecutor exec(&det, e.db.get(), {.pipelined = true});
  auto names = e.table_names;
  names.push_back("ghost_table");
  pipeline::BatchResult batch = exec.RunBatch(names);
  ASSERT_EQ(batch.tables.size(), names.size());
  EXPECT_FALSE(batch.all_ok());
  for (size_t i = 0; i < e.table_names.size(); ++i) {
    EXPECT_TRUE(batch.tables[i].status.ok()) << i;
    EXPECT_EQ(batch.tables[i].result.columns.size(),
              e.dataset.tables[i].columns.size());
  }
  EXPECT_EQ(batch.tables.back().status.code(), StatusCode::kNotFound);
  EXPECT_EQ(exec.resilience_stats().failed_tables, 1);
  // The legacy API keeps the all-or-nothing contract.
  EXPECT_FALSE(exec.Run(names).ok());
}

TEST(PipelineFaultTest, AcceptanceTwentyTablesTenPercentFaultsOneHardFailure) {
  // The ISSUE's acceptance scenario: a 20-table WikiLike batch under a
  // seeded 10% transient-fault script plus one hard-failed table. The
  // pipelined run must complete (no deadlock), return results for all 19
  // healthy tables, and serve the dead table's uncertain columns from the
  // P1 metadata-only prediction, bit-for-bit equal to an enable_p2=false
  // run of the same model.
  Env e = Env::Make(20);
  const std::string dead = e.table_names[7];
  clouddb::FaultConfig cfg;
  cfg.seed = 2025;
  cfg.timeout_prob = 0.10;
  cfg.unavailable_tables = {dead};
  e.InstallFaults(cfg);

  core::TasteOptions opts = ResilientOptions();
  opts.resilience.retry.max_attempts = 6;
  opts.resilience.breaker.failure_threshold = 3;
  core::TasteDetector det(e.model.get(), e.tokenizer.get(), opts);
  pipeline::PipelineExecutor exec(
      &det, e.db.get(),
      {.prep_threads = 2, .infer_threads = 2, .pipelined = true});
  pipeline::BatchResult batch = exec.RunBatch(e.table_names);

  ASSERT_EQ(batch.tables.size(), 20u);
  int degraded_total = 0;
  for (size_t i = 0; i < batch.tables.size(); ++i) {
    const auto& t = batch.tables[i];
    ASSERT_TRUE(t.status.ok())
        << e.table_names[i] << ": " << t.status.ToString();
    ASSERT_EQ(t.result.columns.size(), e.dataset.tables[i].columns.size());
    if (e.table_names[i] == dead) {
      EXPECT_GT(t.result.degraded_columns, 0);
      EXPECT_EQ(t.result.columns_scanned, 0);
      degraded_total += t.result.degraded_columns;
      for (const auto& col : t.result.columns) {
        EXPECT_NE(col.provenance, core::ResultProvenance::kFailed);
      }
    } else {
      EXPECT_EQ(t.result.degraded_columns, 0) << e.table_names[i];
      for (const auto& col : t.result.columns) {
        EXPECT_EQ(col.provenance, core::ResultProvenance::kFull);
      }
    }
  }
  EXPECT_GT(degraded_total, 0);
  const auto& rz = exec.resilience_stats();
  EXPECT_GT(rz.retries, 0);              // the 10% transients were retried
  EXPECT_EQ(rz.failed_tables, 0);        // degradation, not failure
  EXPECT_EQ(rz.degraded_columns, degraded_total);

  // Bit-for-bit: the dead table's columns equal the P1-only prediction.
  Env clean = Env::Make(20);
  core::TasteOptions p1_only;
  p1_only.enable_p2 = false;
  core::TasteDetector reference(clean.model.get(), clean.tokenizer.get(),
                                p1_only);
  auto ref_conn = clean.db->Connect();
  auto ref = reference.DetectTable(ref_conn.get(), dead);
  ASSERT_TRUE(ref.ok());
  const auto& dead_result =
      batch.tables[7].result;
  ASSERT_EQ(dead_result.columns.size(), ref->columns.size());
  for (size_t c = 0; c < dead_result.columns.size(); ++c) {
    EXPECT_EQ(dead_result.columns[c].probabilities,
              ref->columns[c].probabilities)
        << "col " << c;
    EXPECT_EQ(dead_result.columns[c].admitted_types,
              ref->columns[c].admitted_types)
        << "col " << c;
  }
}

TEST(PipelineFaultTest, HardMetadataFailureIsolatedWithoutDegradation) {
  // A table whose metadata AND scans are gone fails permanently; with
  // degradation impossible (P1 never ran) its status is surfaced per-table
  // while the rest of the batch completes.
  Env e = Env::Make(6);
  const std::string dead = e.table_names[2];
  clouddb::FaultConfig cfg;
  cfg.unavailable_tables = {dead};
  cfg.unavailable_all_ops = true;
  e.InstallFaults(cfg);
  core::TasteDetector det(e.model.get(), e.tokenizer.get(),
                          ResilientOptions());
  pipeline::PipelineExecutor exec(&det, e.db.get(), {.pipelined = true});
  pipeline::BatchResult batch = exec.RunBatch(e.table_names);
  for (size_t i = 0; i < batch.tables.size(); ++i) {
    if (e.table_names[i] == dead) {
      EXPECT_EQ(batch.tables[i].status.code(), StatusCode::kUnavailable);
      EXPECT_TRUE(batch.tables[i].result.columns.empty());
    } else {
      EXPECT_TRUE(batch.tables[i].status.ok()) << i;
    }
  }
  EXPECT_EQ(exec.resilience_stats().failed_tables, 1);
}

TEST(PipelineFaultTest, FailedColumnsMarkedWhenDegradationDisabled) {
  Env e = Env::Make(5);
  const std::string dead = e.table_names[3];
  clouddb::FaultConfig cfg;
  cfg.unavailable_tables = {dead};
  e.InstallFaults(cfg);
  core::TasteOptions opts = ResilientOptions();
  opts.resilience.degrade_on_scan_failure = false;
  core::TasteDetector det(e.model.get(), e.tokenizer.get(), opts);
  pipeline::PipelineExecutor exec(&det, e.db.get(), {.pipelined = true});
  pipeline::BatchResult batch = exec.RunBatch(e.table_names);
  bool saw_failed_column = false;
  for (size_t i = 0; i < batch.tables.size(); ++i) {
    if (e.table_names[i] != dead) {
      EXPECT_TRUE(batch.tables[i].status.ok()) << i;
      continue;
    }
    // P1 completed, so the partial result carries every column; the ones
    // P2 could not serve are marked kFailed.
    EXPECT_EQ(batch.tables[i].status.code(), StatusCode::kUnavailable);
    EXPECT_EQ(batch.tables[i].result.columns.size(),
              e.dataset.tables[i].columns.size());
    EXPECT_GT(batch.tables[i].result.failed_columns, 0);
    for (const auto& col : batch.tables[i].result.columns) {
      if (col.provenance == core::ResultProvenance::kFailed) {
        saw_failed_column = true;
        EXPECT_TRUE(col.admitted_types.empty());
      }
    }
  }
  EXPECT_TRUE(saw_failed_column);
}

TEST(PipelineFaultTest, RegistryCountersMatchResilienceAndCacheStats) {
  // The observability layer must tell the same story as the executor's own
  // ResilienceStats and the latent cache's internal counters: a faulted
  // RunBatch's registry deltas equal the structs the run returns.
  obs::SetMetricsEnabled(true);
  Env e = Env::Make(8);
  const std::string dead = e.table_names[3];
  clouddb::FaultConfig cfg;
  cfg.seed = 77;
  cfg.timeout_prob = 0.10;         // transient faults -> retries
  cfg.unavailable_tables = {dead}; // permanent scan failure -> degradation
  e.InstallFaults(cfg);
  core::TasteDetector det(e.model.get(), e.tokenizer.get(),
                          ResilientOptions());
  pipeline::PipelineExecutor exec(&det, e.db.get(), {.pipelined = true});

  const obs::MetricsSnapshot before = obs::MetricsSnapshot::Capture();
  pipeline::BatchResult batch = exec.RunBatch(e.table_names);
  const obs::MetricsSnapshot after = obs::MetricsSnapshot::Capture();

  ASSERT_EQ(batch.tables.size(), e.table_names.size());
  const auto& rz = exec.resilience_stats();
  EXPECT_GT(rz.retries, 0);
  EXPECT_EQ(after.CounterDelta(before, "taste_retries_total"), rz.retries);
  EXPECT_EQ(after.CounterDelta(before, "taste_stage_retries_total"),
            rz.stage_retries);
  EXPECT_EQ(after.CounterDelta(before, "taste_breaker_trips_total"),
            rz.breaker_trips);
  EXPECT_EQ(after.CounterDelta(before, "taste_degraded_columns_total"),
            rz.degraded_columns);
  EXPECT_EQ(after.CounterDelta(before, "taste_failed_tables_total"),
            rz.failed_tables);
  EXPECT_EQ(after.CounterDelta(before, "taste_pipeline_tables_total"),
            static_cast<int64_t>(exec.stats().tables_processed));

  // Cache counters: this detector is the only cache user between the two
  // snapshots, so its internal stats equal the registry deltas exactly.
  const auto cache_stats = det.cache().stats();
  EXPECT_GT(cache_stats.hits + cache_stats.misses, 0);
  EXPECT_EQ(after.CounterDelta(before, "taste_cache_hits_total"),
            cache_stats.hits);
  EXPECT_EQ(after.CounterDelta(before, "taste_cache_misses_total"),
            cache_stats.misses);

  // One batch -> exactly one batch-latency observation.
  EXPECT_EQ(after.HistogramCountDelta(before, "taste_pipeline_batch_ms"), 1);
}

TEST(PipelineFaultTest, ZeroFaultRateIsByteIdenticalToLegacyPath) {
  Env e = Env::Make(8);
  core::TasteDetector plain(e.model.get(), e.tokenizer.get(), {});
  pipeline::PipelineExecutor legacy(&plain, e.db.get(), {.pipelined = true});
  auto a = legacy.Run(e.table_names);
  ASSERT_TRUE(a.ok());

  // Same database, now with an installed-but-all-zero injector and the
  // full resilience machinery enabled.
  e.InstallFaults(clouddb::FaultConfig{.seed = 1});
  core::TasteDetector resilient(e.model.get(), e.tokenizer.get(),
                                ResilientOptions());
  pipeline::PipelineExecutor exec(&resilient, e.db.get(),
                                  {.pipelined = true});
  pipeline::BatchResult batch = exec.RunBatch(e.table_names);
  ASSERT_TRUE(batch.all_ok());
  const auto& rz = exec.resilience_stats();
  EXPECT_EQ(rz.retries, 0);
  EXPECT_EQ(rz.degraded_columns, 0);
  EXPECT_EQ(rz.breaker_trips, 0);
  ASSERT_EQ(batch.tables.size(), a->size());
  for (size_t i = 0; i < a->size(); ++i) {
    const auto& lhs = (*a)[i];
    const auto& rhs = batch.tables[i].result;
    ASSERT_EQ(lhs.columns.size(), rhs.columns.size());
    EXPECT_EQ(lhs.columns_scanned, rhs.columns_scanned);
    for (size_t c = 0; c < lhs.columns.size(); ++c) {
      EXPECT_EQ(lhs.columns[c].admitted_types, rhs.columns[c].admitted_types);
      EXPECT_EQ(lhs.columns[c].probabilities, rhs.columns[c].probabilities);
      EXPECT_EQ(rhs.columns[c].provenance, core::ResultProvenance::kFull);
    }
  }
}

}  // namespace
}  // namespace taste
