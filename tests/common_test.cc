// Unit tests for the common substrate: Status/Result, Rng, ThreadPool,
// string utilities.

#include <atomic>
#include <thread>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace taste {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Invalid("bad alpha");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad alpha");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad alpha");
}

TEST(StatusTest, FactoryCodesAreDistinct) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::Invalid("not positive");
  return x;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = ParsePositive(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  Result<int> err = ParsePositive(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.ValueOr(42), 42);
  EXPECT_EQ(ok.ValueOr(42), 7);
}

Status UseAssignOrReturn(int x, int* out) {
  TASTE_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_FALSE(UseAssignOrReturn(-5, &out).ok());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBelow(13);
    EXPECT_LT(v, 13u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, WeightedChoiceRespectsWeights) {
  Rng rng(23);
  std::vector<double> w = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.WeightedChoice(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.4);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(31);
  Rng f1 = parent.Fork(1);
  Rng f2 = parent.Fork(1);  // parent state advanced -> different stream
  EXPECT_NE(f1.NextU64(), f2.NextU64());
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, FutureCompletes) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  auto fut = pool.Submit([&ran] { ran = true; });
  fut.wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, FullReflectsCapacity) {
  ThreadPool pool(1);
  std::promise<void> release;
  auto shared = release.get_future().share();
  pool.Submit([shared] { shared.wait(); });
  // Give the worker a moment to pick the task up; either way the pool holds
  // one in-flight task and is full.
  EXPECT_TRUE(pool.Full());
  release.set_value();
  pool.WaitIdle();
  EXPECT_FALSE(pool.Full());
  EXPECT_EQ(pool.InFlight(), 0u);
}

TEST(ThreadPoolTest, TaskCompleteCallbackFiresAfterSlotRelease) {
  ThreadPool pool(1);
  std::atomic<int> seen_not_full{0};
  std::atomic<int> calls{0};
  pool.SetTaskCompleteCallback([&] {
    calls.fetch_add(1);
    if (!pool.Full()) seen_not_full.fetch_add(1);
  });
  for (int i = 0; i < 5; ++i) {
    pool.Submit([] {});
  }
  pool.WaitIdle();
  // WaitIdle can return before the final callback runs; wait for it.
  while (calls.load() < 5) std::this_thread::yield();
  EXPECT_EQ(calls.load(), 5);
  // At least the last completion observed a free slot.
  EXPECT_GE(seen_not_full.load(), 1);
}

TEST(ThreadPoolTest, ZeroRequestedBecomesOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("AbC_dE-9"), "abc_de-9");
}

TEST(StringUtilTest, SplitAnyDropsEmpty) {
  auto parts = SplitAny("a_b--c", "_-");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitEmptyString) {
  EXPECT_TRUE(SplitAny("", ",").empty());
  EXPECT_TRUE(SplitAny(",,,", ",").empty());
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, Strip) {
  EXPECT_EQ(Strip("  hi there\t\n"), "hi there");
  EXPECT_EQ(Strip("   "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("customer_id", "customer"));
  EXPECT_FALSE(StartsWith("id", "customer"));
  EXPECT_TRUE(EndsWith("customer_id", "_id"));
  EXPECT_FALSE(EndsWith("id", "_idx"));
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "_"), "a_b_c");
  EXPECT_EQ(ReplaceAll("aaaa", "aa", "b"), "bb");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%s=%d", "n", 10), "n=10");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch sw;
  double t0 = sw.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace taste
