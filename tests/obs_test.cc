// Tests for the observability layer (src/obs/): metrics instruments and
// registry, trace spans, the JSON writer's escaping, and both exporters.
// The exporter round-trip uses a deliberately tiny recursive-descent JSON
// parser defined below — enough of RFC 8259 to re-read our own documents.

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace taste::obs {
namespace {

// ---------------------------------------------------------------------------
// Tiny JSON parser (objects, arrays, strings, numbers, bools, null).

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  const JsonValue& at(const std::string& key) const {
    static const JsonValue missing;
    auto it = obj.find(key);
    return it == obj.end() ? missing : it->second;
  }
  bool has(const std::string& key) const { return obj.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->str);
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::kBool;
      out->b = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::kBool;
      out->b = false;
      pos_ += 5;
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::kNull;
      pos_ += 4;
      return true;
    }
    return ParseNumber(out);
  }
  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::kObject;
    if (!Consume('{')) return false;
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->obj[key] = std::move(v);
      if (Consume(',')) continue;
      return Consume('}');
    }
  }
  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::kArray;
    if (!Consume('[')) return false;
    if (Consume(']')) return true;
    while (true) {
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->arr.push_back(std::move(v));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }
  bool ParseString(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              code <<= 4;
              char h = s_[pos_++];
              if (h >= '0' && h <= '9') code |= h - '0';
              else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
              else return false;
            }
            // Our writer only emits \u00xx for control chars.
            if (code > 0xFF) return false;
            *out += static_cast<char>(code);
            break;
          }
          default:
            return false;
        }
      } else {
        // Raw control characters are invalid JSON — the whole point of
        // the escaping fix.
        if (static_cast<unsigned char>(c) < 0x20) return false;
        *out += c;
      }
    }
    return false;
  }
  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::kNumber;
    out->num = std::stod(s_.substr(start, pos_ - start));
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

JsonValue MustParse(const std::string& text) {
  JsonValue v;
  JsonParser p(text);
  EXPECT_TRUE(p.Parse(&v)) << "invalid JSON: " << text;
  return v;
}

// ---------------------------------------------------------------------------
// JsonWriter escaping.

TEST(JsonWriterTest, EscapesQuotesBackslashesAndControlChars) {
  JsonWriter w;
  w.BeginObject();
  w.Field("plain", std::string("hello"));
  w.Field("quoted", std::string("say \"hi\""));
  w.Field("back\\slash", std::string("a\\b"));
  w.Field("ctl", std::string("line1\nline2\ttab\x01raw"));
  w.EndObject();

  const JsonValue doc = MustParse(w.str());
  EXPECT_EQ(doc.at("plain").str, "hello");
  EXPECT_EQ(doc.at("quoted").str, "say \"hi\"");
  EXPECT_EQ(doc.at("back\\slash").str, "a\\b");
  EXPECT_EQ(doc.at("ctl").str, std::string("line1\nline2\ttab\x01raw"));
  // The raw output must not contain an unescaped control character.
  for (char c : w.str()) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << "raw control char";
  }
}

TEST(JsonWriterTest, NumbersAndNesting) {
  JsonWriter w;
  w.BeginObject();
  w.BeginArray("xs");
  w.Element(1.5);
  w.Element(static_cast<int64_t>(-7));
  w.Element(std::string("s"));
  w.EndArray();
  w.Field("flag", true);
  w.EndObject();

  const JsonValue doc = MustParse(w.str());
  ASSERT_EQ(doc.at("xs").arr.size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("xs").arr[0].num, 1.5);
  EXPECT_DOUBLE_EQ(doc.at("xs").arr[1].num, -7.0);
  EXPECT_EQ(doc.at("xs").arr[2].str, "s");
  EXPECT_TRUE(doc.at("flag").b);
}

// ---------------------------------------------------------------------------
// Instruments.

TEST(CounterTest, IncAndWrapAroundOverflow) {
  Counter c;
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42);
  // Counters wrap modulo 2^64 past INT64_MAX by design.
  c.Reset();
  c.Inc(std::numeric_limits<int64_t>::max());
  c.Inc();
  EXPECT_EQ(c.Value(), std::numeric_limits<int64_t>::min());
  c.Inc();
  EXPECT_EQ(c.Value(), std::numeric_limits<int64_t>::min() + 1);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<int64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAddAndConcurrentAdds) {
  Gauge g;
  g.Set(10.0);
  g.Add(-3.5);
  EXPECT_DOUBLE_EQ(g.Value(), 6.5);

  g.Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.Add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.Value(), static_cast<double>(kThreads) * kPerThread);
}

TEST(HistogramTest, BucketBoundaries) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);   // bucket 0 (<= 1)
  h.Observe(1.0);   // bucket 0 (le is inclusive)
  h.Observe(1.5);   // bucket 1
  h.Observe(4.0);   // bucket 2
  h.Observe(100.0); // +inf bucket
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2);
  EXPECT_EQ(snap.counts[1], 1);
  EXPECT_EQ(snap.counts[2], 1);
  EXPECT_EQ(snap.counts[3], 1);
  EXPECT_EQ(snap.count, 5);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
}

TEST(HistogramTest, QuantileExtraction) {
  Histogram h({10.0, 20.0, 30.0, 40.0});
  // 100 observations uniform in (0, 40]: 25 per bucket.
  for (int i = 1; i <= 100; ++i) h.Observe(i * 0.4);
  const auto snap = h.snapshot();
  // Median falls on the bucket boundary between (10,20].
  EXPECT_NEAR(snap.Quantile(0.5), 20.0, 0.5);
  EXPECT_NEAR(snap.Quantile(0.25), 10.0, 0.5);
  EXPECT_NEAR(snap.Quantile(0.95), 38.0, 1.0);
  // Quantiles never exceed the last finite bound.
  h.Observe(500.0);
  EXPECT_LE(h.snapshot().Quantile(0.999), 40.0);
}

TEST(HistogramTest, ConcurrentObserves) {
  Histogram h({1.0, 10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<double>((t + i) % 3 == 0 ? 0.5 : 50.0));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<int64_t>(kThreads) * kPerThread);
  int64_t bucket_total = 0;
  for (int64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

// ---------------------------------------------------------------------------
// Registry + snapshot helper.

TEST(RegistryTest, HandlesAreStableAndResetPreservesThem) {
  Registry reg;
  Counter* c = reg.GetCounter("taste_test_total");
  EXPECT_EQ(reg.GetCounter("taste_test_total"), c);
  c->Inc(5);
  Histogram* h = reg.GetHistogram("taste_test_ms", {1.0, 2.0});
  h->Observe(1.5);
  reg.Reset();
  EXPECT_EQ(c->Value(), 0);
  EXPECT_EQ(h->snapshot().count, 0);
  EXPECT_EQ(reg.GetCounter("taste_test_total"), c);
  c->Inc();
  EXPECT_EQ(reg.snapshot().counters.at("taste_test_total"), 1);
}

TEST(RegistryTest, ConcurrentRegistrationSameName) {
  Registry reg;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &seen, t] {
      Counter* c = reg.GetCounter("taste_race_total");
      c->Inc();
      seen[t] = c;
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->Value(), kThreads);
}

TEST(MetricsSnapshotTest, DeltasAndMissingNamesReadZero) {
  Registry reg;
  Counter* c = reg.GetCounter("taste_delta_total");
  c->Inc(3);
  const MetricsSnapshot before = MetricsSnapshot::Capture(reg);
  c->Inc(4);
  reg.GetHistogram("taste_delta_ms")->Observe(2.0);
  const MetricsSnapshot after = MetricsSnapshot::Capture(reg);
  EXPECT_EQ(after.CounterDelta(before, "taste_delta_total"), 4);
  EXPECT_EQ(after.HistogramCountDelta(before, "taste_delta_ms"), 1);
  EXPECT_EQ(after.counter("taste_never_registered_total"), 0);
  EXPECT_DOUBLE_EQ(after.gauge("taste_never_registered"), 0.0);
}

TEST(MetricsEnabledTest, ToggleRoundTrip) {
  const bool was = MetricsEnabled();
  SetMetricsEnabled(false);
  EXPECT_FALSE(MetricsEnabled());
  SetMetricsEnabled(true);
  EXPECT_TRUE(MetricsEnabled());
  SetMetricsEnabled(was);
}

TEST(LabeledNameTest, Format) {
  EXPECT_EQ(LabeledName("taste_pipeline_stage_ms", "stage", "p1_prep"),
            "taste_pipeline_stage_ms{stage=\"p1_prep\"}");
}

// ---------------------------------------------------------------------------
// Trace spans.

TEST(TraceTest, DisabledSpansRecordNothing) {
  SetTracingEnabled(false);
  (void)DrainSpans();
  {
    TASTE_SPAN("never.seen");
  }
  EXPECT_TRUE(DrainSpans().empty());
}

TEST(TraceTest, NestingDepthAndParentLinks) {
  SetTracingEnabled(true);
  (void)DrainSpans();  // discard leftovers from other tests
  {
    TASTE_SPAN("outer");
    {
      TASTE_SPAN("inner");
    }
    {
      TASTE_SPAN("sibling");
    }
  }
  SetTracingEnabled(false);
  auto spans = DrainSpans();
  ASSERT_EQ(spans.size(), 3u);
  // Completion order: children before parents.
  std::map<std::string, SpanRecord> by_name;
  for (const auto& s : spans) by_name[s.name] = s;
  ASSERT_TRUE(by_name.count("outer"));
  ASSERT_TRUE(by_name.count("inner"));
  ASSERT_TRUE(by_name.count("sibling"));
  const auto& outer = by_name["outer"];
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(outer.parent_seq, 0u);
  EXPECT_EQ(by_name["inner"].depth, 1);
  EXPECT_EQ(by_name["inner"].parent_seq, outer.seq);
  EXPECT_EQ(by_name["sibling"].depth, 1);
  EXPECT_EQ(by_name["sibling"].parent_seq, outer.seq);
  // Children complete before the parent does.
  EXPECT_EQ(std::string(spans[0].name), "inner");
  EXPECT_EQ(std::string(spans[2].name), "outer");
  EXPECT_GE(outer.dur_ms, by_name["inner"].dur_ms);
}

TEST(TraceTest, SpansFromMultipleThreadsGetDistinctThreadIx) {
  SetTracingEnabled(true);
  (void)DrainSpans();
  std::thread t1([] { TASTE_SPAN("thread.a"); });
  std::thread t2([] { TASTE_SPAN("thread.b"); });
  t1.join();
  t2.join();
  SetTracingEnabled(false);
  auto spans = DrainSpans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].thread_ix, spans[1].thread_ix);
  for (const auto& s : spans) {
    EXPECT_EQ(s.depth, 0);
    EXPECT_EQ(s.parent_seq, 0u);
  }
}

// ---------------------------------------------------------------------------
// Exporters.

TEST(ExportTest, PrometheusTextShape) {
  Registry reg;
  reg.GetCounter("taste_cache_hits_total")->Inc(7);
  reg.GetGauge("taste_cache_bytes")->Set(1024.0);
  reg.GetCounter(LabeledName("taste_db_faults_total", "op", "scan"))->Inc(2);
  Histogram* h = reg.GetHistogram(
      LabeledName("taste_pipeline_stage_ms", "stage", "p1_prep"),
      {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(50.0);

  const std::string text = ToPrometheusText(reg);
  EXPECT_NE(text.find("# TYPE taste_cache_hits_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("taste_cache_hits_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE taste_cache_bytes gauge"), std::string::npos);
  EXPECT_NE(text.find("taste_db_faults_total{op=\"scan\"} 2"),
            std::string::npos);
  // Histogram: cumulative buckets with both the stage label and le.
  EXPECT_NE(text.find("# TYPE taste_pipeline_stage_ms histogram"),
            std::string::npos);
  EXPECT_NE(
      text.find("taste_pipeline_stage_ms_bucket{stage=\"p1_prep\",le=\"1\"} 1"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "taste_pipeline_stage_ms_bucket{stage=\"p1_prep\",le=\"10\"} 2"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "taste_pipeline_stage_ms_bucket{stage=\"p1_prep\",le=\"+Inf\"} 3"),
      std::string::npos);
  EXPECT_NE(text.find("taste_pipeline_stage_ms_count{stage=\"p1_prep\"} 3"),
            std::string::npos);
}

TEST(ExportTest, JsonDocumentRoundTrip) {
  Registry reg;
  reg.GetCounter("taste_cache_hits_total")->Inc(3);
  reg.GetGauge("taste_cache_bytes")->Set(2048.0);
  Histogram* h = reg.GetHistogram("taste_batch_ms", {10.0, 100.0});
  for (int i = 0; i < 10; ++i) h->Observe(5.0);

  std::vector<SpanRecord> spans(1);
  spans[0].name = "pipeline.run_batch";
  spans[0].seq = 1;
  spans[0].dur_ms = 12.5;

  const std::string doc_text = MetricsDocumentJson(reg.snapshot(), &spans);
  const JsonValue doc = MustParse(doc_text);

  const JsonValue& metrics = doc.at("metrics");
  ASSERT_EQ(metrics.kind, JsonValue::kObject);
  EXPECT_DOUBLE_EQ(metrics.at("counters").at("taste_cache_hits_total").num,
                   3.0);
  EXPECT_DOUBLE_EQ(metrics.at("gauges").at("taste_cache_bytes").num, 2048.0);
  const JsonValue& hist = metrics.at("histograms").at("taste_batch_ms");
  EXPECT_DOUBLE_EQ(hist.at("count").num, 10.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").num, 50.0);
  EXPECT_TRUE(hist.has("p50"));
  EXPECT_TRUE(hist.has("p95"));
  EXPECT_TRUE(hist.has("p99"));
  ASSERT_EQ(hist.at("bounds").arr.size(), 2u);
  ASSERT_EQ(hist.at("counts").arr.size(), 3u);
  EXPECT_DOUBLE_EQ(hist.at("counts").arr[0].num, 10.0);

  const JsonValue& span_arr = doc.at("spans");
  ASSERT_EQ(span_arr.kind, JsonValue::kArray);
  ASSERT_EQ(span_arr.arr.size(), 1u);
  EXPECT_EQ(span_arr.arr[0].at("name").str, "pipeline.run_batch");
  EXPECT_DOUBLE_EQ(span_arr.arr[0].at("dur_ms").num, 12.5);
}

TEST(ExportTest, MetricNamesNeedingEscapesStayValidJson) {
  Registry reg;
  reg.GetCounter("weird\"name\ntotal")->Inc(1);
  const std::string doc_text = MetricsDocumentJson(reg.snapshot(), nullptr);
  const JsonValue doc = MustParse(doc_text);
  EXPECT_DOUBLE_EQ(
      doc.at("metrics").at("counters").at("weird\"name\ntotal").num, 1.0);
}

}  // namespace
}  // namespace taste::obs
