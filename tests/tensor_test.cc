// Forward-pass unit tests for the tensor library: factories, shape
// contracts, and operator values.

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace taste::tensor {
namespace {

TEST(TensorTest, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.numel(), 6);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(TensorTest, FullAndScalar) {
  Tensor t = Tensor::Full({4}, 2.5f);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(t.data()[i], 2.5f);
  Tensor s = Tensor::Scalar(-1.0f);
  EXPECT_EQ(s.item(), -1.0f);
}

TEST(TensorTest, FromVector) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.data()[3], 4.0f);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(-1), 2);
}

TEST(TensorTest, RandnIsDeterministicPerSeed) {
  Rng r1(42), r2(42);
  Tensor a = Tensor::Randn({8}, r1);
  Tensor b = Tensor::Randn({8}, r2);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.data()[i], b.data()[i]);
}

TEST(TensorTest, DetachSharesNoHistory) {
  Tensor a = Tensor::Full({2}, 1.0f, /*requires_grad=*/true);
  Tensor b = Scale(a, 2.0f);
  Tensor d = b.Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.data()[0], 2.0f);
}

TEST(TensorTest, ShapeToString) {
  EXPECT_EQ(ShapeToString({4, 12}), "[4, 12]");
  EXPECT_EQ(NumElements({4, 12}), 48);
  EXPECT_EQ(NumElements({}), 1);
}

TEST(OpsTest, AddSubMul) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {10, 20, 30});
  Tensor s = Add(a, b);
  Tensor d = Sub(b, a);
  Tensor m = Mul(a, b);
  EXPECT_EQ(s.data()[2], 33.0f);
  EXPECT_EQ(d.data()[1], 18.0f);
  EXPECT_EQ(m.data()[0], 10.0f);
}

TEST(OpsTest, ScaleAddScalar) {
  Tensor a = Tensor::FromVector({2}, {2, -4});
  EXPECT_EQ(Scale(a, 0.5f).data()[1], -2.0f);
  EXPECT_EQ(AddScalar(a, 1.0f).data()[0], 3.0f);
}

TEST(OpsTest, MatMulValues) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  ASSERT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.data()[0], 58.0f);
  EXPECT_EQ(c.data()[1], 64.0f);
  EXPECT_EQ(c.data()[2], 139.0f);
  EXPECT_EQ(c.data()[3], 154.0f);
}

TEST(OpsTest, BatchedMatMulMatchesPerBatch) {
  Rng rng(1);
  Tensor a = Tensor::Randn({2, 3, 4}, rng);
  Tensor b = Tensor::Randn({2, 4, 5}, rng);
  Tensor c = BatchedMatMul(a, b);
  ASSERT_EQ(c.shape(), (Shape{2, 3, 5}));
  for (int t = 0; t < 2; ++t) {
    Tensor a2 = Tensor::FromVector(
        {3, 4}, std::vector<float>(a.data() + t * 12, a.data() + (t + 1) * 12));
    Tensor b2 = Tensor::FromVector(
        {4, 5}, std::vector<float>(b.data() + t * 20, b.data() + (t + 1) * 20));
    Tensor c2 = MatMul(a2, b2);
    for (int i = 0; i < 15; ++i) {
      EXPECT_NEAR(c.data()[t * 15 + i], c2.data()[i], 1e-5f);
    }
  }
}

TEST(OpsTest, TransposeLast2Rank2) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = TransposeLast2(a);
  ASSERT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.data()[0], 1.0f);
  EXPECT_EQ(t.data()[1], 4.0f);
  EXPECT_EQ(t.data()[2], 2.0f);
}

TEST(OpsTest, TransposeLast2Rank3) {
  Rng rng(2);
  Tensor a = Tensor::Randn({3, 2, 4}, rng);
  Tensor t = TransposeLast2(a);
  ASSERT_EQ(t.shape(), (Shape{3, 4, 2}));
  // spot-check one batch
  EXPECT_EQ(t.data()[1 * 8 + 3 * 2 + 1], a.data()[1 * 8 + 1 * 4 + 3]);
}

TEST(OpsTest, ReshapePreservesData) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Reshape(a, {3, 2});
  ASSERT_EQ(r.shape(), (Shape{3, 2}));
  for (int i = 0; i < 6; ++i) EXPECT_EQ(r.data()[i], a.data()[i]);
}

TEST(OpsTest, Permute3Identity) {
  Rng rng(3);
  Tensor a = Tensor::Randn({2, 3, 4}, rng);
  Tensor p = Permute3(a, {0, 1, 2});
  for (int i = 0; i < 24; ++i) EXPECT_EQ(p.data()[i], a.data()[i]);
}

TEST(OpsTest, Permute3SwapHeadsAndSeq) {
  // (seq, heads, hd) -> (heads, seq, hd): the attention reshape path.
  Tensor a = Tensor::FromVector({2, 2, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  Tensor p = Permute3(a, {1, 0, 2});
  ASSERT_EQ(p.shape(), (Shape{2, 2, 2}));
  // p[h][s][d] = a[s][h][d]
  EXPECT_EQ(p.data()[0], 0.0f);  // p[0][0][0] = a[0][0][0]
  EXPECT_EQ(p.data()[2], 4.0f);  // p[0][1][0] = a[1][0][0]
  EXPECT_EQ(p.data()[4], 2.0f);  // p[1][0][0] = a[0][1][0]
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor s = Softmax(a);
  for (int r = 0; r < 2; ++r) {
    float sum = 0;
    for (int j = 0; j < 3; ++j) sum += s.data()[r * 3 + j];
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  EXPECT_GT(s.data()[2], s.data()[1]);
}

TEST(OpsTest, SoftmaxStableForLargeLogits) {
  Tensor a = Tensor::FromVector({1, 2}, {1000.0f, 1001.0f});
  Tensor s = Softmax(a);
  EXPECT_FALSE(std::isnan(s.data()[0]));
  EXPECT_NEAR(s.data()[0] + s.data()[1], 1.0f, 1e-5f);
}

TEST(OpsTest, LayerNormNormalizesRows) {
  Tensor x = Tensor::FromVector({2, 4}, {1, 2, 3, 4, -2, 0, 2, 4});
  Tensor gamma = Tensor::Full({4}, 1.0f);
  Tensor beta = Tensor::Zeros({4});
  Tensor y = LayerNorm(x, gamma, beta);
  for (int r = 0; r < 2; ++r) {
    float mean = 0, var = 0;
    for (int j = 0; j < 4; ++j) mean += y.data()[r * 4 + j];
    mean /= 4;
    for (int j = 0; j < 4; ++j) {
      float d = y.data()[r * 4 + j] - mean;
      var += d * d;
    }
    var /= 4;
    EXPECT_NEAR(mean, 0.0f, 1e-5f);
    EXPECT_NEAR(var, 1.0f, 1e-3f);
  }
}

TEST(OpsTest, LayerNormAffine) {
  Tensor x = Tensor::FromVector({1, 2}, {-1, 1});
  Tensor gamma = Tensor::FromVector({2}, {2, 2});
  Tensor beta = Tensor::FromVector({2}, {5, 5});
  Tensor y = LayerNorm(x, gamma, beta);
  EXPECT_NEAR(y.data()[0], 5.0f - 2.0f, 1e-3f);
  EXPECT_NEAR(y.data()[1], 5.0f + 2.0f, 1e-3f);
}

TEST(OpsTest, ActivationValues) {
  Tensor x = Tensor::FromVector({3}, {-1, 0, 2});
  EXPECT_EQ(Relu(x).data()[0], 0.0f);
  EXPECT_EQ(Relu(x).data()[2], 2.0f);
  EXPECT_NEAR(Sigmoid(x).data()[1], 0.5f, 1e-6f);
  EXPECT_NEAR(Tanh(x).data()[2], std::tanh(2.0f), 1e-6f);
  // GELU: ~0 at large negative, ~x at large positive, 0 at 0.
  Tensor big = Tensor::FromVector({2}, {-10, 10});
  EXPECT_NEAR(Gelu(big).data()[0], 0.0f, 1e-3f);
  EXPECT_NEAR(Gelu(big).data()[1], 10.0f, 1e-3f);
}

TEST(OpsTest, AddBiasBroadcasts) {
  Tensor x = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2}, {10, 20});
  Tensor y = AddBias(x, b);
  EXPECT_EQ(y.data()[0], 11.0f);
  EXPECT_EQ(y.data()[3], 24.0f);
}

TEST(OpsTest, AddBroadcastMatOverBatch) {
  Tensor x = Tensor::Zeros({2, 2, 2});
  Tensor m = Tensor::FromVector({2, 2}, {0, -1e9f, 0, 0});
  Tensor y = AddBroadcastMat(x, m);
  EXPECT_EQ(y.data()[1], -1e9f);
  EXPECT_EQ(y.data()[5], -1e9f);  // same mask on batch 1
}

TEST(OpsTest, EmbeddingLookupSelectsRows) {
  Tensor w = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor e = EmbeddingLookup(w, {2, 0, 2});
  ASSERT_EQ(e.shape(), (Shape{3, 2}));
  EXPECT_EQ(e.data()[0], 5.0f);
  EXPECT_EQ(e.data()[2], 1.0f);
  EXPECT_EQ(e.data()[4], 5.0f);
}

TEST(OpsTest, GatherRows) {
  Tensor x = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = GatherRows(x, {1});
  ASSERT_EQ(g.shape(), (Shape{1, 2}));
  EXPECT_EQ(g.data()[0], 3.0f);
}

TEST(OpsTest, ConcatRowsAndCols) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor r = ConcatRows({a, b});
  ASSERT_EQ(r.shape(), (Shape{3, 2}));
  EXPECT_EQ(r.data()[4], 5.0f);
  Tensor c = ConcatCols(a, Tensor::FromVector({1, 3}, {7, 8, 9}));
  ASSERT_EQ(c.shape(), (Shape{1, 5}));
  EXPECT_EQ(c.data()[2], 7.0f);
}

TEST(OpsTest, SliceRows) {
  Tensor x = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor s = SliceRows(x, 1, 3);
  ASSERT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.data()[0], 3.0f);
  Tensor empty = SliceRows(x, 2, 2);
  EXPECT_EQ(empty.numel(), 0);
}

TEST(OpsTest, Reductions) {
  Tensor x = Tensor::FromVector({4}, {1, 2, 3, 4});
  EXPECT_EQ(SumAll(x).item(), 10.0f);
  EXPECT_EQ(MeanAll(x).item(), 2.5f);
}

TEST(OpsTest, BceWithLogitsMatchesManual) {
  Tensor z = Tensor::FromVector({2}, {0.0f, 2.0f});
  Tensor y = Tensor::FromVector({2}, {1.0f, 0.0f});
  float expect = (std::log(2.0f) + (2.0f + std::log1p(std::exp(-2.0f)))) / 2;
  EXPECT_NEAR(BceWithLogits(z, y).item(), expect, 1e-5f);
}

TEST(OpsTest, CrossEntropyPerfectPredictionNearZero) {
  Tensor z = Tensor::FromVector({1, 3}, {100.0f, 0.0f, 0.0f});
  EXPECT_NEAR(CrossEntropyWithLogits(z, {0}).item(), 0.0f, 1e-4f);
}

TEST(OpsTest, CrossEntropyIgnoresIndex) {
  Tensor z = Tensor::FromVector({2, 2}, {0, 0, 10, 0});
  float with_ignore = CrossEntropyWithLogits(z, {-1, 0}, -1).item();
  Tensor z2 = Tensor::FromVector({1, 2}, {10, 0});
  float only_valid = CrossEntropyWithLogits(z2, {0}).item();
  EXPECT_NEAR(with_ignore, only_valid, 1e-6f);
}

TEST(OpsTest, CrossEntropyAllIgnoredIsZero) {
  Tensor z = Tensor::FromVector({1, 2}, {1, 2});
  EXPECT_EQ(CrossEntropyWithLogits(z, {-1}, -1).item(), 0.0f);
}

TEST(OpsTest, SigmoidValuesHelper) {
  Tensor z = Tensor::FromVector({2}, {0.0f, 100.0f});
  auto p = SigmoidValues(z);
  EXPECT_NEAR(p[0], 0.5f, 1e-6f);
  EXPECT_NEAR(p[1], 1.0f, 1e-6f);
}

TEST(OpsTest, DropoutInferenceIsIdentity) {
  Rng rng(5);
  Tensor x = Tensor::Full({100}, 1.0f);
  Tensor y = Dropout(x, 0.5f, rng, /*training=*/false);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(y.data()[i], 1.0f);
}

TEST(OpsTest, DropoutTrainingScalesSurvivors) {
  Rng rng(6);
  Tensor x = Tensor::Full({10000}, 1.0f);
  Tensor y = Dropout(x, 0.25f, rng, /*training=*/true);
  int zeros = 0;
  for (int i = 0; i < 10000; ++i) {
    if (y.data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y.data()[i], 1.0f / 0.75f, 1e-5f);
    }
  }
  EXPECT_NEAR(zeros / 10000.0, 0.25, 0.03);
}

}  // namespace
}  // namespace taste::tensor
