// Tests for the evaluation harness: multi-label micro P/R/F1 semantics,
// text reports, and the experiment stack utilities.

#include <filesystem>

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/report.h"

namespace taste::eval {
namespace {

constexpr int kNull = 99;  // stand-in null type id for metric tests

TEST(MetricsTest, PerfectPrediction) {
  PrfScores s = MicroPrf({{1}, {2, 3}}, {{1}, {2, 3}}, kNull);
  EXPECT_EQ(s.tp, 3);
  EXPECT_EQ(s.fp, 0);
  EXPECT_EQ(s.fn, 0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
}

TEST(MetricsTest, FalsePositiveAndNegative) {
  PrfScores s = MicroPrf({{1}}, {{2}}, kNull);
  EXPECT_EQ(s.tp, 0);
  EXPECT_EQ(s.fp, 1);
  EXPECT_EQ(s.fn, 1);
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
}

TEST(MetricsTest, PartialOverlapMultiLabel) {
  PrfScores s = MicroPrf({{1, 2}}, {{1, 3}}, kNull);
  EXPECT_EQ(s.tp, 1);
  EXPECT_EQ(s.fp, 1);
  EXPECT_EQ(s.fn, 1);
  EXPECT_NEAR(s.f1, 0.5, 1e-12);
}

TEST(MetricsTest, NullTypeExcludedFromAccounting) {
  // Truth null + predicted null: a correct "nothing to report" — no credit,
  // no penalty.
  PrfScores s = MicroPrf({{kNull}}, {{kNull}}, kNull);
  EXPECT_EQ(s.tp + s.fp + s.fn, 0);
  // Predicting a concrete type on a null column is a false positive.
  s = MicroPrf({{kNull}}, {{5}}, kNull);
  EXPECT_EQ(s.fp, 1);
  // Missing a concrete type by predicting null is a false negative.
  s = MicroPrf({{5}}, {{kNull}}, kNull);
  EXPECT_EQ(s.fn, 1);
}

TEST(MetricsTest, DuplicatePredictionsCountOnce) {
  PrfScores s = MicroPrf({{1}}, {{1, 1, 1}}, kNull);
  EXPECT_EQ(s.tp, 1);
  EXPECT_EQ(s.fp, 0);
}

TEST(MetricsTest, EmptyInputsGiveZeroScores) {
  PrfScores s = MicroPrf({}, {}, kNull);
  EXPECT_EQ(s.f1, 0.0);
  EXPECT_EQ(s.precision, 0.0);
}

TEST(MetricsTest, AccumulatorMatchesOneShot) {
  MetricsAccumulator acc(kNull);
  acc.AddColumn({1}, {1});
  acc.AddColumn({2}, {3});
  PrfScores a = acc.Compute();
  PrfScores b = MicroPrf({{1}, {2}}, {{1}, {3}}, kNull);
  EXPECT_EQ(a.tp, b.tp);
  EXPECT_EQ(a.fp, b.fp);
  EXPECT_EQ(a.fn, b.fn);
}

TEST(MetricsTest, AddTableAlignsByOrdinal) {
  data::TableSpec table;
  table.columns.resize(2);
  table.columns[0].labels = {1};
  table.columns[1].labels = {2};
  core::TableDetectionResult result;
  // Reversed order in the result: alignment must use ordinals.
  core::ColumnPrediction p1;
  p1.ordinal = 1;
  p1.admitted_types = {2};
  core::ColumnPrediction p0;
  p0.ordinal = 0;
  p0.admitted_types = {1};
  result.columns = {p1, p0};
  MetricsAccumulator acc(kNull);
  acc.AddTable(table, result);
  EXPECT_DOUBLE_EQ(acc.Compute().f1, 1.0);
}

TEST(ReportTest, TableRendersAllCells) {
  TextTable t({"model", "f1"});
  t.AddRow({"taste", "0.93"});
  t.AddSeparator();
  t.AddRow({"turl", "0.91"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("model"), std::string::npos);
  EXPECT_NE(s.find("0.93"), std::string::npos);
  EXPECT_NE(s.find("turl"), std::string::npos);
  // Header + 2 data rows + 4 rules (top, after header, separator, bottom).
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 7);
}

TEST(ReportTest, SectionHeaderContainsTitle) {
  EXPECT_NE(SectionHeader("Fig 4").find("Fig 4"), std::string::npos);
}

TEST(ExperimentTest, MakeTestDatabaseStagesOnlySelected) {
  data::Dataset ds = data::GenerateDataset(data::DatasetProfile::WikiLike(10));
  clouddb::CostModel cost;
  cost.time_scale = 0.0;
  auto db = MakeTestDatabase(ds, {0, 2, 4}, false, cost);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->num_tables(), 3);
  auto conn = (*db)->Connect();
  EXPECT_TRUE(conn->GetTableMetadata(ds.tables[0].name).ok());
  EXPECT_FALSE(conn->GetTableMetadata(ds.tables[1].name).ok());
}

TEST(ExperimentTest, MakeTestDatabaseHistogramFlag) {
  data::Dataset ds = data::GenerateDataset(data::DatasetProfile::WikiLike(4));
  clouddb::CostModel cost;
  cost.time_scale = 0.0;
  auto db = MakeTestDatabase(ds, {0}, true, cost);
  ASSERT_TRUE(db.ok());
  auto conn = (*db)->Connect();
  auto meta = conn->GetTableMetadata(ds.tables[0].name);
  ASSERT_TRUE(meta.ok());
  EXPECT_TRUE(meta->columns[0].histogram.has_value());
}

TEST(ExperimentTest, StackCachingRoundTrip) {
  // Build a minuscule stack twice with a cache dir: the second build must
  // load rather than retrain and produce identical weights.
  auto cache = std::filesystem::temp_directory_path() / "taste_test_cache";
  std::filesystem::remove_all(cache);
  StackOptions opt;
  opt.num_tables = 20;
  opt.pretrain_epochs = 1;
  opt.finetune_epochs = 1;
  opt.train_adtd_hist = false;
  opt.train_baselines = false;
  opt.cache_dir = cache.string();
  auto a = BuildStack(data::DatasetProfile::WikiLike(), opt);
  ASSERT_TRUE(a.ok());
  auto b = BuildStack(data::DatasetProfile::WikiLike(), opt);
  ASSERT_TRUE(b.ok());
  auto pa = a->adtd->NamedParameters();
  auto pb = b->adtd->NamedParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].second.numel(), pb[i].second.numel());
    for (int64_t j = 0; j < pa[i].second.numel(); ++j) {
      ASSERT_EQ(pa[i].second.data()[j], pb[i].second.data()[j])
          << pa[i].first;
    }
  }
  std::filesystem::remove_all(cache);
}

TEST(ExperimentTest, SummarizeResultsComputesRatio) {
  data::Dataset ds = data::GenerateDataset(data::DatasetProfile::WikiLike(3));
  std::vector<core::TableDetectionResult> results(1);
  results[0].table_name = ds.tables[0].name;
  for (size_t c = 0; c < ds.tables[0].columns.size(); ++c) {
    core::ColumnPrediction p;
    p.ordinal = static_cast<int>(c);
    p.admitted_types = ds.tables[0].columns[c].labels;
    results[0].columns.push_back(p);
  }
  clouddb::IoLedger::Snapshot ledger;
  ledger.scanned_columns = 1;
  ledger.simulated_io_ms = 12.5;
  EvalRunResult r = SummarizeResults(results, ds, {0}, ledger, 100.0);
  EXPECT_DOUBLE_EQ(r.scores.f1, 1.0);
  EXPECT_EQ(r.scanned_columns, 1);
  EXPECT_EQ(r.total_columns,
            static_cast<int64_t>(ds.tables[0].columns.size()));
  EXPECT_GT(r.scanned_ratio(), 0.0);
  EXPECT_EQ(r.simulated_io_ms, 12.5);
  EXPECT_EQ(r.wall_ms, 100.0);
}

}  // namespace
}  // namespace taste::eval
