// Tests for the synthetic data substrate: the semantic type registry,
// value generators, table/dataset generation, profiles, and the
// retained-type transformation.

#include <regex>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/semantic_types.h"
#include "data/table_generator.h"

namespace taste::data {
namespace {

const SemanticTypeRegistry& Reg() { return SemanticTypeRegistry::Default(); }

TEST(RegistryTest, HasExpectedScale) {
  EXPECT_GE(Reg().size(), 40);
  EXPECT_GE(Reg().num_groups(), 10);
}

TEST(RegistryTest, NullTypeRegistered) {
  int id = Reg().null_type_id();
  EXPECT_GE(id, 0);
  EXPECT_EQ(Reg().info(id).name, "type:null");
}

TEST(RegistryTest, IdByNameRoundTrip) {
  for (int id = 0; id < Reg().size(); ++id) {
    auto res = Reg().IdByName(Reg().info(id).name);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(*res, id);
  }
  EXPECT_FALSE(Reg().IdByName("no_such_type").ok());
}

TEST(RegistryTest, EveryTypeHasGeneratorAndSqlType) {
  Rng rng(1);
  for (int id = 0; id < Reg().size(); ++id) {
    EXPECT_FALSE(Reg().info(id).sql_type.empty()) << Reg().info(id).name;
    std::string v = Reg().GenerateValue(id, rng);
    EXPECT_FALSE(v.empty()) << Reg().info(id).name;
  }
}

TEST(RegistryTest, EveryConcreteTypeHasInformativeNames) {
  for (int id = 0; id < Reg().size(); ++id) {
    if (id == Reg().null_type_id()) continue;
    EXPECT_GE(Reg().info(id).informative_names.size(), 2u)
        << Reg().info(id).name;
  }
}

TEST(RegistryTest, InformativeNamesAreUniqueAcrossTypes) {
  std::set<std::string> seen;
  for (int id = 0; id < Reg().size(); ++id) {
    for (const auto& n : Reg().info(id).informative_names) {
      EXPECT_TRUE(seen.insert(n).second)
          << "name '" << n << "' reused by " << Reg().info(id).name;
    }
  }
}

TEST(RegistryTest, GroupsPartitionTypes) {
  int total = 0;
  for (int g = 0; g < Reg().num_groups(); ++g) {
    auto members = Reg().GroupMembers(g);
    total += static_cast<int>(members.size());
    EXPECT_FALSE(Reg().GroupAmbiguousNames(g).empty());
  }
  EXPECT_EQ(total, Reg().size());
}

TEST(RegistryTest, ConfusableGroupsHaveMultipleMembers) {
  // The two-phase mechanism needs groups where metadata alone cannot
  // separate members.
  int multi = 0;
  for (int g = 0; g < Reg().num_groups(); ++g) {
    if (Reg().GroupMembers(g).size() >= 2) ++multi;
  }
  EXPECT_GE(multi, 8);
}

TEST(GeneratorValueTest, EmailShape) {
  Rng rng(2);
  int id = *Reg().IdByName("email");
  for (int i = 0; i < 20; ++i) {
    std::string v = Reg().GenerateValue(id, rng);
    EXPECT_NE(v.find('@'), std::string::npos) << v;
    EXPECT_NE(v.find('.'), std::string::npos) << v;
  }
}

TEST(GeneratorValueTest, CreditCardShape) {
  Rng rng(3);
  int id = *Reg().IdByName("credit_card");
  std::regex re(R"(\d{4} \d{4} \d{4} \d{4})");
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(std::regex_match(Reg().GenerateValue(id, rng), re));
  }
}

TEST(GeneratorValueTest, SsnShape) {
  Rng rng(4);
  int id = *Reg().IdByName("ssn");
  std::regex re(R"(\d{3}-\d{2}-\d{4})");
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(std::regex_match(Reg().GenerateValue(id, rng), re));
  }
}

TEST(GeneratorValueTest, DateShape) {
  Rng rng(5);
  int id = *Reg().IdByName("date");
  std::regex re(R"(\d{4}-\d{2}-\d{2})");
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(std::regex_match(Reg().GenerateValue(id, rng), re));
  }
}

TEST(GeneratorValueTest, IpShape) {
  Rng rng(6);
  int id = *Reg().IdByName("ip_address");
  std::regex re(R"(\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3})");
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(std::regex_match(Reg().GenerateValue(id, rng), re));
  }
}

TEST(GeneratorValueTest, UuidShape) {
  Rng rng(7);
  int id = *Reg().IdByName("uuid");
  std::regex re(R"([0-9a-f]{8}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{12})");
  EXPECT_TRUE(std::regex_match(Reg().GenerateValue(id, rng), re));
}

TEST(GeneratorValueTest, ValuesFromDifferentGroupMembersDiffer) {
  // Content disambiguates within a confusion group: phone vs credit card
  // values must be distinguishable (different shapes).
  Rng rng(8);
  int phone = *Reg().IdByName("phone_number");
  int cc = *Reg().IdByName("credit_card");
  std::regex cc_re(R"(\d{4} \d{4} \d{4} \d{4})");
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(std::regex_match(Reg().GenerateValue(phone, rng), cc_re));
  }
}

TEST(MiscValueTest, FlavorsProduceDistinctSqlTypes) {
  EXPECT_EQ(SemanticTypeRegistry::MiscSqlType(0), "varchar(255)");
  EXPECT_EQ(SemanticTypeRegistry::MiscSqlType(1), "int");
  EXPECT_EQ(SemanticTypeRegistry::MiscSqlType(2), "double");
}

TEST(TableGeneratorTest, GeneratesWithinProfileBounds) {
  DatasetProfile p = DatasetProfile::WikiLike(30);
  TableGenerator gen(p, Reg());
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    TableSpec t = gen.GenerateTable(rng);
    EXPECT_GE(static_cast<int>(t.columns.size()), p.min_columns);
    EXPECT_LE(static_cast<int>(t.columns.size()), p.max_columns);
    EXPECT_GE(t.num_rows, p.min_rows);
    EXPECT_LE(t.num_rows, p.max_rows);
    for (const auto& c : t.columns) {
      EXPECT_EQ(static_cast<int>(c.values.size()), t.num_rows);
      EXPECT_FALSE(c.labels.empty());
    }
  }
}

TEST(TableGeneratorTest, ColumnNamesUniqueWithinTable) {
  TableGenerator gen(DatasetProfile::GitLike(30), Reg());
  Rng rng(10);
  for (int i = 0; i < 20; ++i) {
    TableSpec t = gen.GenerateTable(rng);
    std::unordered_set<std::string> names;
    for (const auto& c : t.columns) {
      EXPECT_TRUE(names.insert(c.name).second) << c.name;
    }
  }
}

TEST(DatasetTest, DeterministicForSameSeed) {
  Dataset a = GenerateDataset(DatasetProfile::WikiLike(20));
  Dataset b = GenerateDataset(DatasetProfile::WikiLike(20));
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (size_t i = 0; i < a.tables.size(); ++i) {
    EXPECT_EQ(a.tables[i].name, b.tables[i].name);
    ASSERT_EQ(a.tables[i].columns.size(), b.tables[i].columns.size());
    for (size_t c = 0; c < a.tables[i].columns.size(); ++c) {
      EXPECT_EQ(a.tables[i].columns[c].name, b.tables[i].columns[c].name);
      EXPECT_EQ(a.tables[i].columns[c].values, b.tables[i].columns[c].values);
    }
  }
  EXPECT_EQ(a.train, b.train);
}

TEST(DatasetTest, SplitsPartitionTables) {
  Dataset ds = GenerateDataset(DatasetProfile::WikiLike(50));
  EXPECT_EQ(ds.train.size() + ds.valid.size() + ds.test.size(),
            ds.tables.size());
  std::unordered_set<int> all;
  for (int i : ds.train) all.insert(i);
  for (int i : ds.valid) all.insert(i);
  for (int i : ds.test) all.insert(i);
  EXPECT_EQ(all.size(), ds.tables.size());
  EXPECT_NEAR(static_cast<double>(ds.train.size()) / ds.tables.size(), 0.8,
              0.05);
}

TEST(DatasetTest, WikiLikeHasNoNullColumns) {
  Dataset ds = GenerateDataset(DatasetProfile::WikiLike(40));
  EXPECT_EQ(ds.NullColumnRatio(Reg()), 0.0);
}

TEST(DatasetTest, GitLikeNullRatioNearTarget) {
  Dataset ds = GenerateDataset(DatasetProfile::GitLike(200));
  EXPECT_NEAR(ds.NullColumnRatio(Reg()), 0.3156, 0.04);
}

TEST(DatasetTest, TableNamesUniqueAcrossCorpus) {
  Dataset ds = GenerateDataset(DatasetProfile::WikiLike(60));
  std::unordered_set<std::string> names;
  for (const auto& t : ds.tables) {
    EXPECT_TRUE(names.insert(t.name).second) << t.name;
  }
}

TEST(RetainedTypesTest, SelectIsDeterministicAndSized) {
  auto a = SelectRetainedTypes(Reg(), 10, 42);
  auto b = SelectRetainedTypes(Reg(), 10, 42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 10u);
  for (int id : a) EXPECT_NE(id, Reg().null_type_id());
}

TEST(RetainedTypesTest, ApplyRelabelsOutsideTypesToNull) {
  Dataset ds = GenerateDataset(DatasetProfile::WikiLike(40));
  auto retained = SelectRetainedTypes(Reg(), 5, 0);
  Dataset tuned = ApplyRetainedTypes(ds, retained, Reg());
  std::unordered_set<int> keep(retained.begin(), retained.end());
  ASSERT_EQ(tuned.tables.size(), ds.tables.size());
  for (const auto& t : tuned.tables) {
    for (const auto& c : t.columns) {
      ASSERT_FALSE(c.labels.empty());
      for (int l : c.labels) {
        EXPECT_TRUE(keep.count(l) != 0 || l == Reg().null_type_id());
      }
    }
  }
  // Shrinking the retained set raises the null ratio.
  EXPECT_GT(tuned.NullColumnRatio(Reg()), 0.5);
}

TEST(RetainedTypesTest, FullSetIsIdentityOnLabels) {
  Dataset ds = GenerateDataset(DatasetProfile::WikiLike(20));
  auto retained = SelectRetainedTypes(Reg(), Reg().size() - 1, 0);
  Dataset tuned = ApplyRetainedTypes(ds, retained, Reg());
  for (size_t i = 0; i < ds.tables.size(); ++i) {
    for (size_t c = 0; c < ds.tables[i].columns.size(); ++c) {
      EXPECT_EQ(tuned.tables[i].columns[c].labels,
                ds.tables[i].columns[c].labels);
    }
  }
}

TEST(CorpusTest, DocumentsCoverTables) {
  Dataset ds = GenerateDataset(DatasetProfile::WikiLike(15));
  auto docs = BuildCorpusDocuments(ds);
  EXPECT_EQ(docs.size(), ds.tables.size());
  for (const auto& d : docs) EXPECT_FALSE(d.empty());
  auto limited = BuildCorpusDocuments(ds, 5);
  EXPECT_EQ(limited.size(), 5u);
}

TEST(DomainTest, AllDomainTypeNamesResolve) {
  for (const auto& d : BuiltinDomains()) {
    for (const auto& t : d.typical_types) {
      EXPECT_TRUE(Reg().IdByName(t).ok()) << d.name << " -> " << t;
    }
  }
}

TEST(DomainTest, TenDomains) {
  EXPECT_EQ(BuiltinDomains().size(), 10u);
}

}  // namespace
}  // namespace taste::data
