// Robustness and edge-case tests across module boundaries: serving-time
// overrides, degenerate inputs, corrupted checkpoints, and concurrent use
// of shared components.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include <gtest/gtest.h>

#include "core/feedback.h"
#include "core/taste_detector.h"
#include "data/table_generator.h"
#include "nn/serialize.h"
#include "text/wordpiece.h"

namespace taste {
namespace {

struct Env {
  data::Dataset dataset;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer;
  std::unique_ptr<model::AdtdModel> model;
  std::unique_ptr<clouddb::SimulatedDatabase> db;

  static Env Make(int tables = 10) {
    Env e;
    e.dataset = data::GenerateDataset(data::DatasetProfile::WikiLike(tables));
    text::WordPieceTrainer trainer({.vocab_size = 400});
    for (const auto& d : data::BuildCorpusDocuments(e.dataset)) {
      trainer.AddDocument(d);
    }
    e.tokenizer = std::make_unique<text::WordPieceTokenizer>(trainer.Train());
    model::AdtdConfig cfg = model::AdtdConfig::Tiny(
        e.tokenizer->vocab().size(),
        data::SemanticTypeRegistry::Default().size());
    Rng rng(77);
    e.model = std::make_unique<model::AdtdModel>(cfg, rng);
    clouddb::CostModel cost;
    cost.time_scale = 0.0;
    e.db = std::make_unique<clouddb::SimulatedDatabase>(cost);
    TASTE_CHECK(e.db->IngestDataset(e.dataset).ok());
    return e;
  }
};

TEST(OverrideTest, CellsPerColumnOverrideChangesScanUsage) {
  Env e = Env::Make();
  core::TasteOptions small;
  small.override_cells_per_column = 1;
  core::TasteOptions large;
  large.override_cells_per_column = 20;
  core::TasteDetector det_small(e.model.get(), e.tokenizer.get(), small);
  core::TasteDetector det_large(e.model.get(), e.tokenizer.get(), large);
  auto conn = e.db->Connect();
  auto a = det_small.DetectTable(conn.get(), e.dataset.tables[0].name);
  auto b = det_large.DetectTable(conn.get(), e.dataset.tables[0].name);
  ASSERT_TRUE(a.ok() && b.ok());
  // Both must produce full, well-formed results for every column.
  EXPECT_EQ(a->columns.size(), b->columns.size());
  // Predictions (P2) may differ since the content evidence differs.
  // What must NOT differ is which columns were scanned (P1 decides that).
  EXPECT_EQ(a->columns_scanned, b->columns_scanned);
}

TEST(OverrideTest, SplitThresholdOverrideSplitsServing) {
  Env e = Env::Make();
  core::TasteOptions tiny_l;
  tiny_l.override_split_threshold = 1;  // every column its own chunk
  core::TasteDetector det(e.model.get(), e.tokenizer.get(), tiny_l);
  auto conn = e.db->Connect();
  const auto& table = e.dataset.tables[1];
  auto res = det.DetectTable(conn.get(), table.name);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->columns.size(), table.columns.size());
  for (size_t i = 0; i < res->columns.size(); ++i) {
    EXPECT_EQ(res->columns[i].ordinal, static_cast<int>(i));
  }
}

TEST(EdgeCaseTest, SplitWideTableWithLOne) {
  clouddb::TableMetadata meta;
  meta.columns.resize(5);
  for (int i = 0; i < 5; ++i) meta.columns[i].ordinal = i;
  auto chunks = model::SplitWideTable(meta, 1);
  EXPECT_EQ(chunks.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(chunks[i].columns.size(), 1u);
    EXPECT_EQ(chunks[i].columns[0].ordinal, static_cast<int>(i));
  }
}

TEST(EdgeCaseTest, EmptyTableRejectedByDetector) {
  Env e = Env::Make(3);
  data::TableSpec empty;
  empty.name = "empty_table";
  empty.num_rows = 0;
  ASSERT_TRUE(e.db->CreateTable(empty).ok());
  core::TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  auto conn = e.db->Connect();
  auto res = det.DetectTable(conn.get(), "empty_table");
  EXPECT_FALSE(res.ok());
}

TEST(EdgeCaseTest, EncodeFixedZeroLength) {
  Env e = Env::Make(3);
  auto ids = e.tokenizer->EncodeFixed("anything", 0);
  EXPECT_TRUE(ids.empty());
}

TEST(EdgeCaseTest, SingleRowTableWorksEndToEnd) {
  Env e = Env::Make(3);
  data::TableSpec t;
  t.name = "one_row";
  t.num_rows = 1;
  data::ColumnSpec c;
  c.name = "email";
  c.sql_type = "varchar(255)";
  c.values = {"a@b.com"};
  c.labels = {0};
  t.columns.push_back(c);
  ASSERT_TRUE(e.db->CreateTable(t).ok());
  core::TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  auto conn = e.db->Connect();
  auto res = det.DetectTable(conn.get(), "one_row");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->columns.size(), 1u);
}

TEST(CheckpointRobustnessTest, TruncatedFileRejectedCleanly) {
  Env e = Env::Make(3);
  auto path = std::filesystem::temp_directory_path() / "taste_trunc.ckpt";
  ASSERT_TRUE(nn::SaveCheckpoint(*e.model, path.string()).ok());
  // Truncate to 60% of its size: must fail with IOError, not crash.
  auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size * 6 / 10);
  model::AdtdConfig cfg = e.model->config();
  Rng rng(1);
  model::AdtdModel fresh(cfg, rng);
  Status st = nn::LoadCheckpoint(&fresh, path.string());
  EXPECT_FALSE(st.ok());
  std::filesystem::remove(path);
}

TEST(CheckpointRobustnessTest, EmptyFileRejected) {
  auto path = std::filesystem::temp_directory_path() / "taste_empty.ckpt";
  {
    std::ofstream out(path);
  }
  Rng rng(2);
  nn::Linear lin(2, 2, rng);
  EXPECT_FALSE(nn::LoadCheckpoint(&lin, path.string()).ok());
  std::filesystem::remove(path);
}

TEST(ConcurrencyTest, FeedbackStoreParallelWrites) {
  core::FeedbackStore store;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 50; ++i) {
        store.Add({"table" + std::to_string(i % 5),
                   "col" + std::to_string(t), i % 7, (i % 2) == 0});
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(store.size(), 0u);
}

TEST(ConcurrencyTest, SharedDetectorAcrossThreads) {
  // One detector instance, two threads, separate connections: the model is
  // read-only at inference and the latent cache is synchronized.
  Env e = Env::Make(8);
  core::TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      auto conn = e.db->Connect();
      for (size_t i = static_cast<size_t>(t); i < e.dataset.tables.size();
           i += 2) {
        auto res = det.DetectTable(conn.get(), e.dataset.tables[i].name);
        if (!res.ok()) ++errors;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST(DeterminismTest, DetectionIsBitStableAcrossRuns) {
  Env e = Env::Make(5);
  core::TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  auto conn = e.db->Connect();
  auto a = det.DetectTable(conn.get(), e.dataset.tables[0].name);
  auto b = det.DetectTable(conn.get(), e.dataset.tables[0].name);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t c = 0; c < a->columns.size(); ++c) {
    EXPECT_EQ(a->columns[c].admitted_types, b->columns[c].admitted_types);
    EXPECT_EQ(a->columns[c].probabilities, b->columns[c].probabilities);
  }
}

}  // namespace
}  // namespace taste
