// Tests for the TASTE two-phase framework: threshold semantics, stage
// ordering contracts, privacy mode, cache interplay, and an end-to-end
// trained-model integration check.

#include <gtest/gtest.h>

#include "core/taste_detector.h"
#include "data/table_generator.h"
#include "eval/experiment.h"
#include "model/trainer.h"

namespace taste::core {
namespace {

struct Env {
  data::Dataset dataset;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer;
  std::unique_ptr<model::AdtdModel> model;  // untrained (probs near 0.5)
  std::unique_ptr<clouddb::SimulatedDatabase> db;

  static Env Make(int tables = 12) {
    Env e;
    e.dataset = data::GenerateDataset(data::DatasetProfile::WikiLike(tables));
    text::WordPieceTrainer trainer({.vocab_size = 500});
    for (const auto& d : data::BuildCorpusDocuments(e.dataset)) {
      trainer.AddDocument(d);
    }
    e.tokenizer = std::make_unique<text::WordPieceTokenizer>(trainer.Train());
    model::AdtdConfig cfg = model::AdtdConfig::Tiny(
        e.tokenizer->vocab().size(),
        data::SemanticTypeRegistry::Default().size());
    Rng rng(42);
    e.model = std::make_unique<model::AdtdModel>(cfg, rng);
    clouddb::CostModel cost;
    cost.time_scale = 0.0;
    e.db = std::make_unique<clouddb::SimulatedDatabase>(cost);
    TASTE_CHECK(e.db->IngestDataset(e.dataset).ok());
    return e;
  }
};

TEST(TasteDetectorTest, StageOrderEnforced) {
  Env e = Env::Make();
  TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  TasteDetector::Job job;
  EXPECT_FALSE(det.InferP1(&job).ok());  // before PrepareP1
  auto conn = e.db->Connect();
  ASSERT_TRUE(det.PrepareP1(conn.get(), e.dataset.tables[0].name, &job).ok());
  ASSERT_TRUE(det.InferP1(&job).ok());
  if (job.needs_p2) {
    EXPECT_FALSE(det.InferP2(&job).ok());  // before PrepareP2
  }
}

TEST(TasteDetectorTest, UnknownTableFails) {
  Env e = Env::Make();
  TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  auto conn = e.db->Connect();
  EXPECT_FALSE(det.DetectTable(conn.get(), "no_such_table").ok());
}

TEST(TasteDetectorTest, InvalidThresholdsRejected) {
  Env e = Env::Make();
  EXPECT_DEATH(
      {
        TasteDetector det(e.model.get(), e.tokenizer.get(),
                          {.alpha = 0.9, .beta = 0.1});
      },
      "alpha");
}

TEST(TasteDetectorTest, UntrainedModelRoutesToP2) {
  // An untrained model emits mid-range probabilities, so with the default
  // (0.1, 0.9) interval every column is uncertain -> P2 scans them.
  Env e = Env::Make();
  TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  auto conn = e.db->Connect();
  auto res = det.DetectTable(conn.get(), e.dataset.tables[0].name);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res->columns_scanned, 0);
  for (const auto& col : res->columns) {
    EXPECT_TRUE(col.went_to_p2);
  }
}

TEST(TasteDetectorTest, AlphaEqualsBetaDisablesP2) {
  // alpha == beta leaves no uncertainty interval: pure metadata mode.
  Env e = Env::Make();
  TasteDetector det(e.model.get(), e.tokenizer.get(),
                    {.alpha = 0.5, .beta = 0.5});
  auto conn = e.db->Connect();
  auto res = det.DetectTable(conn.get(), e.dataset.tables[0].name);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->columns_scanned, 0);
  EXPECT_EQ(e.db->ledger().snapshot().scanned_columns, 0);
}

TEST(TasteDetectorTest, EnableP2FalseNeverScans) {
  Env e = Env::Make();
  TasteDetector det(e.model.get(), e.tokenizer.get(), {.enable_p2 = false});
  auto conn = e.db->Connect();
  for (int i = 0; i < 5; ++i) {
    auto res = det.DetectTable(conn.get(), e.dataset.tables[i].name);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res->columns_scanned, 0);
  }
  EXPECT_EQ(e.db->ledger().snapshot().scanned_columns, 0);
}

TEST(TasteDetectorTest, ResultCoversAllColumnsInOrdinalOrder) {
  Env e = Env::Make();
  TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  auto conn = e.db->Connect();
  const auto& table = e.dataset.tables[1];
  auto res = det.DetectTable(conn.get(), table.name);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->columns.size(), table.columns.size());
  EXPECT_EQ(res->total_columns, static_cast<int>(table.columns.size()));
  for (size_t i = 0; i < res->columns.size(); ++i) {
    EXPECT_EQ(res->columns[i].ordinal, static_cast<int>(i));
    EXPECT_EQ(res->columns[i].column_name, table.columns[i].name);
  }
}

TEST(TasteDetectorTest, ProbabilitiesHaveTypeDomainSize) {
  Env e = Env::Make();
  TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  auto conn = e.db->Connect();
  auto res = det.DetectTable(conn.get(), e.dataset.tables[0].name);
  ASSERT_TRUE(res.ok());
  for (const auto& col : res->columns) {
    EXPECT_EQ(static_cast<int>(col.probabilities.size()),
              data::SemanticTypeRegistry::Default().size());
    for (float p : col.probabilities) {
      EXPECT_GE(p, 0.0f);
      EXPECT_LE(p, 1.0f);
    }
  }
}

TEST(TasteDetectorTest, LatentCachePopulatedAndHit) {
  Env e = Env::Make();
  TasteDetector det(e.model.get(), e.tokenizer.get(),
                    {.use_latent_cache = true});
  auto conn = e.db->Connect();
  ASSERT_TRUE(det.DetectTable(conn.get(), e.dataset.tables[0].name).ok());
  EXPECT_GT(det.cache().size(), 0u);
  // P2 fetched the latents from the cache.
  EXPECT_GT(det.cache().stats().hits, 0);
}

TEST(TasteDetectorTest, NoCacheModeKeepsCacheEmpty) {
  Env e = Env::Make();
  TasteDetector det(e.model.get(), e.tokenizer.get(),
                    {.use_latent_cache = false});
  auto conn = e.db->Connect();
  ASSERT_TRUE(det.DetectTable(conn.get(), e.dataset.tables[0].name).ok());
  EXPECT_EQ(det.cache().size(), 0u);
}

TEST(TasteDetectorTest, CacheAndNoCacheProduceSamePredictions) {
  // Caching is an optimization: admitted types must be identical.
  Env e = Env::Make();
  TasteDetector cached(e.model.get(), e.tokenizer.get(),
                       {.use_latent_cache = true});
  TasteDetector uncached(e.model.get(), e.tokenizer.get(),
                         {.use_latent_cache = false});
  auto conn = e.db->Connect();
  for (int i = 0; i < 4; ++i) {
    auto a = cached.DetectTable(conn.get(), e.dataset.tables[i].name);
    auto b = uncached.DetectTable(conn.get(), e.dataset.tables[i].name);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->columns.size(), b->columns.size());
    for (size_t c = 0; c < a->columns.size(); ++c) {
      EXPECT_EQ(a->columns[c].admitted_types, b->columns[c].admitted_types);
    }
  }
}

TEST(TasteDetectorTest, ServingRecordsNoAutogradEdges) {
  // Serving must never grow the autograd tape: neither through the
  // detector's internal NoGradGuards, nor — belt and braces — when a
  // structural no-grad ExecContext is bound by the pipeline.
  Env e = Env::Make();
  TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  auto conn = e.db->Connect();
  const int64_t edges_before = tensor::GradEdgesRecorded();
  ASSERT_TRUE(det.DetectTable(conn.get(), e.dataset.tables[0].name).ok());
  EXPECT_EQ(tensor::GradEdgesRecorded(), edges_before);

  tensor::ExecContext::Options opt;
  opt.no_grad = true;
  tensor::ExecContext ctx(opt);
  ASSERT_TRUE(
      det.DetectTable(conn.get(), e.dataset.tables[1].name, &ctx).ok());
  EXPECT_EQ(tensor::GradEdgesRecorded(), edges_before);
}

TEST(TasteDetectorTest, SamplingModeScansSameColumns) {
  Env e = Env::Make();
  TasteDetector first(e.model.get(), e.tokenizer.get(),
                      {.random_sample = false});
  TasteDetector sampled(e.model.get(), e.tokenizer.get(),
                        {.random_sample = true, .sample_seed = 1});
  auto conn = e.db->Connect();
  auto a = first.DetectTable(conn.get(), e.dataset.tables[2].name);
  auto b = sampled.DetectTable(conn.get(), e.dataset.tables[2].name);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->columns_scanned, b->columns_scanned);
}

TEST(TasteDetectorIntegration, TrainedModelBeatsUntrainedAndScansLess) {
  // End-to-end: train a small stack and verify P1 resolves a healthy share
  // of columns with good accuracy.
  eval::StackOptions opt;
  opt.num_tables = 160;
  opt.pretrain_epochs = 1;
  opt.finetune_epochs = 16;
  opt.train_adtd_hist = false;
  opt.train_baselines = false;
  opt.cache_dir = "";  // do not pollute the shared cache from tests
  auto stack = eval::BuildStack(data::DatasetProfile::WikiLike(), opt);
  ASSERT_TRUE(stack.ok());
  clouddb::CostModel cost;
  cost.time_scale = 0.0;
  auto db = eval::MakeTestDatabase(stack->dataset, stack->dataset.test,
                                   /*with_histograms=*/false, cost);
  ASSERT_TRUE(db.ok());
  TasteDetector det(stack->adtd.get(), stack->tokenizer.get(), {});
  auto run = eval::EvaluateSequential(
      [&det](clouddb::Connection* conn, const std::string& name) {
        return det.DetectTable(conn, name);
      },
      db->get(), stack->dataset, stack->dataset.test);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->scores.f1, 0.5);          // learned far beyond chance
  EXPECT_LT(run->scanned_ratio(), 1.0);    // P1 resolved some columns alone
  EXPECT_GT(run->total_columns, 0);
}

}  // namespace
}  // namespace taste::core
