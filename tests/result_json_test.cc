// Tests for the JSON export of detection results.

#include <gtest/gtest.h>

#include "core/result_json.h"

namespace taste::core {
namespace {

const data::SemanticTypeRegistry& Reg() {
  return data::SemanticTypeRegistry::Default();
}

TableDetectionResult MakeResult() {
  TableDetectionResult r;
  r.table_name = "customers";
  r.total_columns = 2;
  r.columns_scanned = 1;
  ColumnPrediction a;
  a.column_name = "email";
  a.ordinal = 0;
  a.admitted_types = {*Reg().IdByName("email")};
  a.probabilities.assign(static_cast<size_t>(Reg().size()), 0.01f);
  a.probabilities[static_cast<size_t>(*Reg().IdByName("email"))] = 0.97f;
  a.went_to_p2 = false;
  ColumnPrediction b;
  b.column_name = "num";
  b.ordinal = 1;
  b.admitted_types = {*Reg().IdByName("phone_number")};
  b.probabilities.assign(static_cast<size_t>(Reg().size()), 0.01f);
  b.probabilities[static_cast<size_t>(*Reg().IdByName("phone_number"))] =
      0.8f;
  b.probabilities[static_cast<size_t>(*Reg().IdByName("credit_card"))] =
      0.45f;
  b.went_to_p2 = true;
  r.columns = {a, b};
  return r;
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonEscape("plain"), "plain");
}

TEST(ResultJsonTest, ContainsCoreFields) {
  std::string json = ResultToJson(MakeResult(), Reg());
  EXPECT_NE(json.find("\"table\": \"customers\""), std::string::npos);
  EXPECT_NE(json.find("\"columns_scanned\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"total_columns\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"email\""), std::string::npos);
  EXPECT_NE(json.find("\"phone_number\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\": \"P1\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\": \"P2\""), std::string::npos);
}

TEST(ResultJsonTest, CandidatesListNonAdmittedHighProbTypes) {
  std::string json = ResultToJson(MakeResult(), Reg());
  // credit_card at p=0.45 is above the 0.2 default threshold and not
  // admitted -> listed as a candidate.
  EXPECT_NE(json.find("\"candidates\""), std::string::npos);
  EXPECT_NE(json.find("credit_card"), std::string::npos);
}

TEST(ResultJsonTest, ProbabilitiesGatedByOption) {
  JsonOptions with;
  with.include_probabilities = true;
  std::string on = ResultToJson(MakeResult(), Reg(), with);
  std::string off = ResultToJson(MakeResult(), Reg());
  EXPECT_NE(on.find("\"probabilities\""), std::string::npos);
  EXPECT_EQ(off.find("\"probabilities\""), std::string::npos);
}

TEST(ResultJsonTest, CompactModeHasNoNewlines) {
  JsonOptions compact;
  compact.pretty = false;
  std::string json = ResultToJson(MakeResult(), Reg(), compact);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(ResultJsonTest, BatchArray) {
  std::vector<TableDetectionResult> results = {MakeResult(), MakeResult()};
  std::string json = ResultsToJson(results, Reg());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  // Two tables rendered.
  size_t first = json.find("\"table\"");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(json.find("\"table\"", first + 1), std::string::npos);
}

TEST(ResultJsonTest, BalancedBracesAndQuotes) {
  for (bool pretty : {true, false}) {
    JsonOptions o;
    o.pretty = pretty;
    o.include_probabilities = true;
    std::string json = ResultToJson(MakeResult(), Reg(), o);
    int depth = 0, brackets = 0;
    int quotes = 0;
    bool in_string = false;
    for (size_t i = 0; i < json.size(); ++i) {
      char c = json[i];
      if (c == '"' && (i == 0 || json[i - 1] != '\\')) {
        in_string = !in_string;
        ++quotes;
      }
      if (in_string) continue;
      if (c == '{') ++depth;
      if (c == '}') --depth;
      if (c == '[') ++brackets;
      if (c == ']') --brackets;
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(brackets, 0);
    EXPECT_EQ(quotes % 2, 0);
  }
}

TEST(ResultJsonTest, EmptyBatch) {
  EXPECT_EQ(ResultsToJson({}, Reg(), {.pretty = false}), "[]");
}

}  // namespace
}  // namespace taste::core
