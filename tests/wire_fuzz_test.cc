// Deterministic fuzzing of the serve-tier frame parser and payload
// decoders (serve/wire.h).
//
// The wire layer is the trust boundary of the multi-process serving tier:
// every byte a replica sends crosses FrameBuffer/ReadFrame before anything
// else looks at it, so the parser must hold three properties under
// arbitrary input:
//
//   1. never crash or read/write out of bounds (the asan/ubsan CI lane
//      runs this binary — `unit` label, sanitizers find what EXPECTs
//      cannot);
//   2. never over-allocate on a lying length or count prefix (the
//      kMaxFramePayload cap and WireReader::FitsElements guards);
//   3. never ACCEPT a corrupted frame — a flipped bit anywhere in the
//      envelope (length, version, type, payload, CRC) must surface as a
//      typed FrameFault or an incomplete-frame wait, never as a valid
//      frame.
//
// All mutation schedules are driven by seeded xoshiro streams: every
// failure reproduces from the iteration's seed, no wall-clock or global
// RNG state anywhere.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/rng.h"
#include "model/latent_cache.h"
#include "serve/wire.h"

namespace taste {
namespace {

serve::FrameType RandomType(Rng& rng) {
  // Valid types are 1..9 (ValidFrameType; kCacheLookup/kCacheFill extended
  // the range in the cache-plane PR).
  return static_cast<serve::FrameType>(1 + rng.NextU64() % 9);
}

std::string RandomPayload(Rng& rng, size_t max_len) {
  const size_t len = rng.NextU64() % (max_len + 1);
  std::string p(len, '\0');
  for (auto& c : p) c = static_cast<char>(rng.NextU64() & 0xFF);
  return p;
}

// ---------------------------------------------------------------------------
// Property 0 (baseline): uncorrupted streams always reassemble exactly,
// whatever the chunking. A fuzzer that cannot pass its own clean corpus
// proves nothing about the dirty one.

TEST(WireFuzzTest, CleanStreamsReassembleUnderRandomChunking) {
  Rng rng(0xC1EA7ull);
  for (int iter = 0; iter < 2000; ++iter) {
    const int frames = 1 + static_cast<int>(rng.NextU64() % 4);
    std::string stream;
    std::vector<std::pair<serve::FrameType, std::string>> sent;
    for (int f = 0; f < frames; ++f) {
      const serve::FrameType t = RandomType(rng);
      std::string p = RandomPayload(rng, 300);
      stream += serve::EncodeFrame(t, p);
      sent.emplace_back(t, std::move(p));
    }
    serve::FrameBuffer fb;
    size_t pos = 0;
    size_t got = 0;
    while (pos < stream.size()) {
      const size_t chunk =
          std::min(stream.size() - pos, 1 + rng.NextU64() % 64);
      fb.Append(stream.data() + pos, chunk);
      pos += chunk;
      for (;;) {
        serve::Frame frame;
        auto r = fb.Next(&frame);
        ASSERT_TRUE(r.ok()) << "iter " << iter;
        if (!*r) break;
        ASSERT_LT(got, sent.size());
        EXPECT_EQ(frame.type, sent[got].first);
        EXPECT_EQ(frame.payload, sent[got].second);
        ++got;
      }
    }
    EXPECT_EQ(got, sent.size()) << "iter " << iter;
    EXPECT_EQ(fb.buffered(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Property 3: a single flipped bit anywhere in the envelope is never
// accepted. CRC32 detects all 1-bit errors outright; a flip in the length
// prefix shifts the CRC window instead, which either truncates (wait) or
// mismatches.

TEST(WireFuzzTest, SingleBitFlipsAreNeverAccepted) {
  Rng rng(0xF11Bull);
  int rejected = 0, waited = 0;
  for (int iter = 0; iter < 10000; ++iter) {
    std::string frame =
        serve::EncodeFrame(RandomType(rng), RandomPayload(rng, 200));
    const size_t bit = rng.NextU64() % (frame.size() * 8);
    frame[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(frame[bit / 8]) ^ (1u << (bit % 8)));

    serve::FrameBuffer fb;
    fb.Append(frame.data(), frame.size());
    for (;;) {
      serve::Frame out;
      auto r = fb.Next(&out);
      if (!r.ok()) {
        EXPECT_NE(fb.last_fault(), serve::FrameFault::kNone);
        ++rejected;
        break;
      }
      if (!*r) {
        // Incomplete (a length lie that claims more bytes): not accepted,
        // and the parser buffered only what we fed it — no allocation
        // driven by the lying prefix.
        EXPECT_LE(fb.buffered(), frame.size());
        ++waited;
        break;
      }
      // A frame popped: with a flipped bit this must be impossible.
      ADD_FAILURE() << "iter " << iter << ": corrupted frame accepted (bit "
                    << bit << " of " << frame.size() * 8 << ")";
      break;
    }
  }
  // Both rejection modes must actually occur across the corpus.
  EXPECT_GT(rejected, 0);
  EXPECT_GT(waited, 0);
}

// ---------------------------------------------------------------------------
// Truncations: any strict prefix of a valid frame is a wait, never an
// error and never a frame.

TEST(WireFuzzTest, TruncatedPrefixesWaitWithoutFaulting) {
  Rng rng(0x7A47Cull);
  for (int iter = 0; iter < 4000; ++iter) {
    const std::string frame =
        serve::EncodeFrame(RandomType(rng), RandomPayload(rng, 150));
    const size_t keep = rng.NextU64() % frame.size();  // strict prefix
    serve::FrameBuffer fb;
    fb.Append(frame.data(), keep);
    serve::Frame out;
    auto r = fb.Next(&out);
    ASSERT_TRUE(r.ok()) << "iter " << iter << " keep " << keep;
    EXPECT_FALSE(*r);
    EXPECT_EQ(fb.last_fault(), serve::FrameFault::kNone);
    // Completing the tail must recover the frame: truncation is not
    // corruption.
    fb.Append(frame.data() + keep, frame.size() - keep);
    auto r2 = fb.Next(&out);
    ASSERT_TRUE(r2.ok());
    EXPECT_TRUE(*r2);
  }
}

// ---------------------------------------------------------------------------
// Property 2: lying length prefixes. Giant lengths must be rejected from
// the 6 buffered header bytes alone — before any payload-sized allocation
// could happen.

TEST(WireFuzzTest, GiantLengthPrefixesRejectFromHeaderAlone) {
  Rng rng(0x61A47ull);
  for (int iter = 0; iter < 10000; ++iter) {
    const uint32_t len = static_cast<uint32_t>(
        serve::kMaxFramePayload + 1 + rng.NextU64() % (1u << 30));
    std::string head(serve::kFrameHeaderBytes, '\0');
    for (int i = 0; i < 4; ++i) {
      head[i] = static_cast<char>((len >> (8 * i)) & 0xFF);
    }
    head[4] = static_cast<char>(serve::kWireProtocolVersion);
    head[5] = static_cast<char>(RandomType(rng));
    serve::FrameBuffer fb;
    fb.Append(head.data(), head.size());
    serve::Frame out;
    auto r = fb.Next(&out);
    EXPECT_FALSE(r.ok()) << "iter " << iter << " len " << len;
    EXPECT_EQ(fb.last_fault(), serve::FrameFault::kOversized);
    EXPECT_EQ(fb.buffered(), head.size());  // nothing was allocated for len
  }
}

// ---------------------------------------------------------------------------
// Garbage streams: random bytes must never produce a frame (version byte,
// type range, and CRC all have to line up — rejection, wait, or fault are
// the only outcomes).

TEST(WireFuzzTest, RandomGarbageIsNeverAccepted) {
  Rng rng(0x6A4BA6Eull);
  for (int iter = 0; iter < 10000; ++iter) {
    const std::string junk = RandomPayload(rng, 256);
    serve::FrameBuffer fb;
    fb.Append(junk.data(), junk.size());
    serve::Frame out;
    auto r = fb.Next(&out);
    if (r.ok()) {
      EXPECT_FALSE(*r) << "iter " << iter << ": garbage accepted as a frame";
    } else {
      EXPECT_NE(fb.last_fault(), serve::FrameFault::kNone);
    }
  }
}

// ---------------------------------------------------------------------------
// Payload decoders: mutated DetectRequest/DetectResponse/MetricsSnapshot
// payloads must never crash or over-allocate (WireReader::FitsElements
// rejects count fields that promise more elements than bytes remain).
// Status-level rejection is the expected outcome; parsing "successfully"
// to garbage values is tolerable, crashing is not.

TEST(WireFuzzTest, MutatedPayloadDecodersNeverCrash) {
  Rng rng(0xDEC0DEull);
  // A representative response with nested vectors — the deepest decoder.
  serve::DetectResponse resp;
  resp.request_id = 99;
  resp.wall_ms = 1.5;
  resp.stats.retries = 2;
  pipeline::TableRunResult t;
  t.result.table_name = "fuzz_table";
  core::ColumnPrediction col;
  col.column_name = "c0";
  col.admitted_types = {1, 2, 3};
  col.probabilities = {0.25f, 0.5f, 0.125f};
  t.result.columns.push_back(col);
  resp.tables.push_back(t);
  const std::string resp_bytes = serve::EncodeDetectResponse(resp);

  serve::DetectRequest req;
  req.request_id = 7;
  req.tables = {"a", "b", "c"};
  const std::string req_bytes = serve::EncodeDetectRequest(req);

  for (int iter = 0; iter < 10000; ++iter) {
    std::string bytes = (iter % 2 == 0) ? resp_bytes : req_bytes;
    // One to four mutations: bit flips and truncation.
    const int edits = 1 + static_cast<int>(rng.NextU64() % 4);
    for (int e = 0; e < edits; ++e) {
      if (bytes.empty()) break;
      if (rng.NextU64() % 4 == 0) {
        bytes.resize(rng.NextU64() % bytes.size());  // truncate
      } else {
        const size_t bit = rng.NextU64() % (bytes.size() * 8);
        bytes[bit / 8] = static_cast<char>(
            static_cast<unsigned char>(bytes[bit / 8]) ^ (1u << (bit % 8)));
      }
    }
    if (iter % 2 == 0) {
      auto r = serve::DecodeDetectResponse(bytes);
      (void)r;  // ok-or-error both fine; the property is "no crash"
    } else {
      auto r = serve::DecodeDetectRequest(bytes);
      (void)r;
    }
  }
}

// A count-field lie must fail fast instead of resizing a vector to the
// lied size: 0xFFFFFFFF admitted types backed by 8 bytes of payload.

TEST(WireFuzzTest, CountFieldLiesDoNotOverAllocate) {
  serve::WireWriter w;
  w.U32(0xFFFFFFFFu);  // "four billion tables follow"
  w.U64(42);           // ...backed by eight bytes
  const std::string lie = w.Take();
  serve::WireReader r(lie);
  EXPECT_FALSE(r.FitsElements(0xFFFFFFFFull, 4));
  EXPECT_FALSE(r.ok());

  // And through a real decoder: a DetectRequest whose table count lies.
  serve::WireWriter dr;
  dr.U64(1);      // request id
  dr.F64(0.0);    // deadline
  dr.U8(0);       // lane
  dr.U8(0);       // dtype
  dr.U32(0x7FFFFFFFu);  // table count lie
  dr.Str("only one actual table");
  auto decoded = serve::DecodeDetectRequest(dr.Take());
  EXPECT_FALSE(decoded.ok());
}

// ---------------------------------------------------------------------------
// Cache-plane payloads (kCacheLookup / kCacheFill / encoded cache entries).
// Same three properties as the detect-path decoders: no crash, no
// over-allocation from lying counts, no acceptance of flipped bits.

/// A representative latent-cache entry with every field populated — the
/// deepest cache-plane decoder input (nested tensors inside a fill inside a
/// frame).
model::CachedMetadata MakeCacheEntry() {
  model::CachedMetadata m;
  m.input.table_name = "fuzz_table";
  m.input.token_ids = {5, 6, 7, 8, 9};
  m.input.column_anchors = {0, 3};
  m.input.column_ordinals = {0, 1};
  m.input.column_names = {"alpha", "beta"};
  m.input.features =
      tensor::Tensor::FromVector({2, 3}, {0.5f, -1.0f, 2.25f, 0.0f, 1e-7f, 3.0f});
  m.input.attention_mask = tensor::Tensor::FromVector(
      {5, 5}, std::vector<float>(25, 1.0f));
  m.input.num_columns = 2;
  m.encoding.layer_latents.push_back(
      tensor::Tensor::FromVector({5, 4}, std::vector<float>(20, 0.125f)));
  m.encoding.layer_latents.push_back(
      tensor::Tensor::FromVector({5, 4}, std::vector<float>(20, -0.25f)));
  m.encoding.anchor_states =
      tensor::Tensor::FromVector({2, 4}, std::vector<float>(8, 0.75f));
  m.encoding.logits =
      tensor::Tensor::FromVector({2, 3}, {0.1f, -0.2f, 0.3f, 4.0f, -5.0f, 6.0f});
  return m;
}

bool SameTensor(const tensor::Tensor& a, const tensor::Tensor& b) {
  if (a.defined() != b.defined()) return false;
  if (!a.defined()) return true;
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

// Baseline: a clean entry round-trips byte-identically (raw IEEE-754 bits on
// the wire) and its CRC validates.

TEST(WireFuzzTest, CleanCacheEntryRoundTripsByteIdentical) {
  const model::CachedMetadata entry = MakeCacheEntry();
  const std::string bytes = serve::EncodeCachedMetadata(entry);
  ASSERT_TRUE(serve::CachedEntryCrcValid(bytes));
  auto back = serve::DecodeCachedMetadata(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->input.table_name, entry.input.table_name);
  EXPECT_EQ(back->input.token_ids, entry.input.token_ids);
  EXPECT_EQ(back->input.column_anchors, entry.input.column_anchors);
  EXPECT_EQ(back->input.column_ordinals, entry.input.column_ordinals);
  EXPECT_EQ(back->input.column_names, entry.input.column_names);
  EXPECT_EQ(back->input.num_columns, entry.input.num_columns);
  EXPECT_TRUE(SameTensor(back->input.features, entry.input.features));
  EXPECT_TRUE(
      SameTensor(back->input.attention_mask, entry.input.attention_mask));
  ASSERT_EQ(back->encoding.layer_latents.size(),
            entry.encoding.layer_latents.size());
  for (size_t i = 0; i < entry.encoding.layer_latents.size(); ++i) {
    EXPECT_TRUE(SameTensor(back->encoding.layer_latents[i],
                           entry.encoding.layer_latents[i]));
  }
  EXPECT_TRUE(
      SameTensor(back->encoding.anchor_states, entry.encoding.anchor_states));
  EXPECT_TRUE(SameTensor(back->encoding.logits, entry.encoding.logits));

  // And the lookup/fill envelopes round-trip too.
  serve::CacheLookup lookup;
  lookup.lookup_id = 0xDEADBEEFull;
  lookup.key = "fuzz_table#0";
  auto lk = serve::DecodeCacheLookup(serve::EncodeCacheLookup(lookup));
  ASSERT_TRUE(lk.ok());
  EXPECT_EQ(lk->lookup_id, lookup.lookup_id);
  EXPECT_EQ(lk->key, lookup.key);
  serve::CacheFill fill;
  fill.lookup_id = 7;
  fill.hit = 1;
  fill.key = lookup.key;
  fill.entry = bytes;
  auto fl = serve::DecodeCacheFill(serve::EncodeCacheFill(fill));
  ASSERT_TRUE(fl.ok());
  EXPECT_EQ(fl->lookup_id, fill.lookup_id);
  EXPECT_EQ(fl->hit, fill.hit);
  EXPECT_EQ(fl->key, fill.key);
  EXPECT_EQ(fl->entry, fill.entry);
}

// A single flipped bit anywhere in an encoded cache entry must never
// validate: CachedEntryCrcValid is false (the router's admit/serve gate) and
// DecodeCachedMetadata rejects (the worker's decode gate). CRC-32 detects
// all single-bit errors, so this is exhaustive-by-sampling, not
// probabilistic.

TEST(WireFuzzTest, CacheEntryBitFlipsAreNeverAccepted) {
  Rng rng(0xCAC4Eull);
  const std::string clean = serve::EncodeCachedMetadata(MakeCacheEntry());
  for (int iter = 0; iter < 10000; ++iter) {
    std::string bytes = clean;
    const size_t bit = rng.NextU64() % (bytes.size() * 8);
    bytes[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(bytes[bit / 8]) ^ (1u << (bit % 8)));
    EXPECT_FALSE(serve::CachedEntryCrcValid(bytes))
        << "iter " << iter << ": flipped bit " << bit << " validated";
    EXPECT_FALSE(serve::DecodeCachedMetadata(bytes).ok())
        << "iter " << iter << ": flipped bit " << bit << " decoded";
  }
}

// Mutated cache-plane payloads (bit flips AND truncations, 1-4 edits) must
// never crash any of the three decoders. Status-level rejection is the
// expected outcome; the property under asan/ubsan is "no crash, no OOB".

TEST(WireFuzzTest, MutatedCachePayloadDecodersNeverCrash) {
  Rng rng(0xCAFEDECull);
  const std::string entry_bytes = serve::EncodeCachedMetadata(MakeCacheEntry());
  serve::CacheFill fill;
  fill.lookup_id = 3;
  fill.hit = 1;
  fill.key = "fuzz_table#1";
  fill.entry = entry_bytes;
  const std::string fill_bytes = serve::EncodeCacheFill(fill);
  serve::CacheLookup lookup;
  lookup.lookup_id = 11;
  lookup.key = "fuzz_table#1";
  const std::string lookup_bytes = serve::EncodeCacheLookup(lookup);

  for (int iter = 0; iter < 10000; ++iter) {
    std::string bytes;
    switch (iter % 3) {
      case 0: bytes = entry_bytes; break;
      case 1: bytes = fill_bytes; break;
      default: bytes = lookup_bytes; break;
    }
    const int edits = 1 + static_cast<int>(rng.NextU64() % 4);
    for (int e = 0; e < edits; ++e) {
      if (bytes.empty()) break;
      if (rng.NextU64() % 4 == 0) {
        bytes.resize(rng.NextU64() % bytes.size());  // truncate
      } else {
        const size_t bit = rng.NextU64() % (bytes.size() * 8);
        bytes[bit / 8] = static_cast<char>(
            static_cast<unsigned char>(bytes[bit / 8]) ^ (1u << (bit % 8)));
      }
    }
    switch (iter % 3) {
      case 0: (void)serve::DecodeCachedMetadata(bytes); break;
      case 1: (void)serve::DecodeCacheFill(bytes); break;
      default: (void)serve::DecodeCacheLookup(bytes); break;
    }
  }
}

/// Reseals a lying entry body with a VALID CRC trailer, so the decode has
/// to reject it on its structural guards (FitsElements, rank/dim bounds)
/// rather than the checksum — the count-lie properties below specifically
/// target the post-CRC code paths.
std::string SealWithValidCrc(const serve::WireWriter& w) {
  std::string body = w.data();
  const uint32_t crc = Crc32(body.data(), body.size());
  for (int i = 0; i < 4; ++i) {
    body.push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
  }
  return body;
}

// Count-field lies in cache entries must fail fast, never resize to the
// lied count. Each lie is CRC-sealed so it reaches the structural guards.

TEST(WireFuzzTest, CacheEntryCountLiesDoNotOverAllocate) {
  // Lie 1: token-id count claims four billion ints backed by a few bytes.
  {
    serve::WireWriter w;
    w.Str("t");
    w.U32(0xFFFFFFFFu);  // token_ids count lie
    w.U32(1);
    auto r = serve::DecodeCachedMetadata(SealWithValidCrc(w));
    EXPECT_FALSE(r.ok());
  }
  // Lie 2: tensor rank/dims promising ~2^62 elements.
  {
    serve::WireWriter w;
    w.Str("t");
    w.U32(0);  // token_ids
    w.U32(0);  // column_anchors
    w.U32(0);  // column_ordinals
    w.U32(0);  // column_names
    w.U8(1);   // features defined
    w.U32(2);  // rank 2
    w.I64(1ll << 31);
    w.I64(1ll << 31);  // numel lie: 2^62 floats
    auto r = serve::DecodeCachedMetadata(SealWithValidCrc(w));
    EXPECT_FALSE(r.ok());
  }
  // Lie 3: latent count claims 100k tensors backed by nothing.
  {
    const model::CachedMetadata entry = MakeCacheEntry();
    serve::WireWriter w;
    const model::EncodedMetadata& in = entry.input;
    w.Str(in.table_name);
    w.U32(0);  // token_ids
    w.U32(0);  // column_anchors
    w.U32(0);  // column_ordinals
    w.U32(0);  // column_names
    w.U8(0);   // features undefined
    w.U8(0);   // attention_mask undefined
    w.U32(static_cast<uint32_t>(in.num_columns));
    w.U32(100000);  // layer_latents count lie
    auto r = serve::DecodeCachedMetadata(SealWithValidCrc(w));
    EXPECT_FALSE(r.ok());
  }
  // And the fill envelope: a key-length lie inside a CacheFill.
  {
    serve::WireWriter w;
    w.U64(1);  // lookup_id
    w.U8(1);   // hit
    w.U32(0xFFFFFF00u);  // key length lie
    w.U64(0);
    auto r = serve::DecodeCacheFill(w.data());
    EXPECT_FALSE(r.ok());
  }
}

}  // namespace
}  // namespace taste
