// Deterministic fuzzing of the serve-tier frame parser and payload
// decoders (serve/wire.h).
//
// The wire layer is the trust boundary of the multi-process serving tier:
// every byte a replica sends crosses FrameBuffer/ReadFrame before anything
// else looks at it, so the parser must hold three properties under
// arbitrary input:
//
//   1. never crash or read/write out of bounds (the asan/ubsan CI lane
//      runs this binary — `unit` label, sanitizers find what EXPECTs
//      cannot);
//   2. never over-allocate on a lying length or count prefix (the
//      kMaxFramePayload cap and WireReader::FitsElements guards);
//   3. never ACCEPT a corrupted frame — a flipped bit anywhere in the
//      envelope (length, version, type, payload, CRC) must surface as a
//      typed FrameFault or an incomplete-frame wait, never as a valid
//      frame.
//
// All mutation schedules are driven by seeded xoshiro streams: every
// failure reproduces from the iteration's seed, no wall-clock or global
// RNG state anywhere.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "serve/wire.h"

namespace taste {
namespace {

serve::FrameType RandomType(Rng& rng) {
  // Valid types are 1..7 (ValidFrameType).
  return static_cast<serve::FrameType>(1 + rng.NextU64() % 7);
}

std::string RandomPayload(Rng& rng, size_t max_len) {
  const size_t len = rng.NextU64() % (max_len + 1);
  std::string p(len, '\0');
  for (auto& c : p) c = static_cast<char>(rng.NextU64() & 0xFF);
  return p;
}

// ---------------------------------------------------------------------------
// Property 0 (baseline): uncorrupted streams always reassemble exactly,
// whatever the chunking. A fuzzer that cannot pass its own clean corpus
// proves nothing about the dirty one.

TEST(WireFuzzTest, CleanStreamsReassembleUnderRandomChunking) {
  Rng rng(0xC1EA7ull);
  for (int iter = 0; iter < 2000; ++iter) {
    const int frames = 1 + static_cast<int>(rng.NextU64() % 4);
    std::string stream;
    std::vector<std::pair<serve::FrameType, std::string>> sent;
    for (int f = 0; f < frames; ++f) {
      const serve::FrameType t = RandomType(rng);
      std::string p = RandomPayload(rng, 300);
      stream += serve::EncodeFrame(t, p);
      sent.emplace_back(t, std::move(p));
    }
    serve::FrameBuffer fb;
    size_t pos = 0;
    size_t got = 0;
    while (pos < stream.size()) {
      const size_t chunk =
          std::min(stream.size() - pos, 1 + rng.NextU64() % 64);
      fb.Append(stream.data() + pos, chunk);
      pos += chunk;
      for (;;) {
        serve::Frame frame;
        auto r = fb.Next(&frame);
        ASSERT_TRUE(r.ok()) << "iter " << iter;
        if (!*r) break;
        ASSERT_LT(got, sent.size());
        EXPECT_EQ(frame.type, sent[got].first);
        EXPECT_EQ(frame.payload, sent[got].second);
        ++got;
      }
    }
    EXPECT_EQ(got, sent.size()) << "iter " << iter;
    EXPECT_EQ(fb.buffered(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Property 3: a single flipped bit anywhere in the envelope is never
// accepted. CRC32 detects all 1-bit errors outright; a flip in the length
// prefix shifts the CRC window instead, which either truncates (wait) or
// mismatches.

TEST(WireFuzzTest, SingleBitFlipsAreNeverAccepted) {
  Rng rng(0xF11Bull);
  int rejected = 0, waited = 0;
  for (int iter = 0; iter < 10000; ++iter) {
    std::string frame =
        serve::EncodeFrame(RandomType(rng), RandomPayload(rng, 200));
    const size_t bit = rng.NextU64() % (frame.size() * 8);
    frame[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(frame[bit / 8]) ^ (1u << (bit % 8)));

    serve::FrameBuffer fb;
    fb.Append(frame.data(), frame.size());
    for (;;) {
      serve::Frame out;
      auto r = fb.Next(&out);
      if (!r.ok()) {
        EXPECT_NE(fb.last_fault(), serve::FrameFault::kNone);
        ++rejected;
        break;
      }
      if (!*r) {
        // Incomplete (a length lie that claims more bytes): not accepted,
        // and the parser buffered only what we fed it — no allocation
        // driven by the lying prefix.
        EXPECT_LE(fb.buffered(), frame.size());
        ++waited;
        break;
      }
      // A frame popped: with a flipped bit this must be impossible.
      ADD_FAILURE() << "iter " << iter << ": corrupted frame accepted (bit "
                    << bit << " of " << frame.size() * 8 << ")";
      break;
    }
  }
  // Both rejection modes must actually occur across the corpus.
  EXPECT_GT(rejected, 0);
  EXPECT_GT(waited, 0);
}

// ---------------------------------------------------------------------------
// Truncations: any strict prefix of a valid frame is a wait, never an
// error and never a frame.

TEST(WireFuzzTest, TruncatedPrefixesWaitWithoutFaulting) {
  Rng rng(0x7A47Cull);
  for (int iter = 0; iter < 4000; ++iter) {
    const std::string frame =
        serve::EncodeFrame(RandomType(rng), RandomPayload(rng, 150));
    const size_t keep = rng.NextU64() % frame.size();  // strict prefix
    serve::FrameBuffer fb;
    fb.Append(frame.data(), keep);
    serve::Frame out;
    auto r = fb.Next(&out);
    ASSERT_TRUE(r.ok()) << "iter " << iter << " keep " << keep;
    EXPECT_FALSE(*r);
    EXPECT_EQ(fb.last_fault(), serve::FrameFault::kNone);
    // Completing the tail must recover the frame: truncation is not
    // corruption.
    fb.Append(frame.data() + keep, frame.size() - keep);
    auto r2 = fb.Next(&out);
    ASSERT_TRUE(r2.ok());
    EXPECT_TRUE(*r2);
  }
}

// ---------------------------------------------------------------------------
// Property 2: lying length prefixes. Giant lengths must be rejected from
// the 6 buffered header bytes alone — before any payload-sized allocation
// could happen.

TEST(WireFuzzTest, GiantLengthPrefixesRejectFromHeaderAlone) {
  Rng rng(0x61A47ull);
  for (int iter = 0; iter < 10000; ++iter) {
    const uint32_t len = static_cast<uint32_t>(
        serve::kMaxFramePayload + 1 + rng.NextU64() % (1u << 30));
    std::string head(serve::kFrameHeaderBytes, '\0');
    for (int i = 0; i < 4; ++i) {
      head[i] = static_cast<char>((len >> (8 * i)) & 0xFF);
    }
    head[4] = static_cast<char>(serve::kWireProtocolVersion);
    head[5] = static_cast<char>(RandomType(rng));
    serve::FrameBuffer fb;
    fb.Append(head.data(), head.size());
    serve::Frame out;
    auto r = fb.Next(&out);
    EXPECT_FALSE(r.ok()) << "iter " << iter << " len " << len;
    EXPECT_EQ(fb.last_fault(), serve::FrameFault::kOversized);
    EXPECT_EQ(fb.buffered(), head.size());  // nothing was allocated for len
  }
}

// ---------------------------------------------------------------------------
// Garbage streams: random bytes must never produce a frame (version byte,
// type range, and CRC all have to line up — rejection, wait, or fault are
// the only outcomes).

TEST(WireFuzzTest, RandomGarbageIsNeverAccepted) {
  Rng rng(0x6A4BA6Eull);
  for (int iter = 0; iter < 10000; ++iter) {
    const std::string junk = RandomPayload(rng, 256);
    serve::FrameBuffer fb;
    fb.Append(junk.data(), junk.size());
    serve::Frame out;
    auto r = fb.Next(&out);
    if (r.ok()) {
      EXPECT_FALSE(*r) << "iter " << iter << ": garbage accepted as a frame";
    } else {
      EXPECT_NE(fb.last_fault(), serve::FrameFault::kNone);
    }
  }
}

// ---------------------------------------------------------------------------
// Payload decoders: mutated DetectRequest/DetectResponse/MetricsSnapshot
// payloads must never crash or over-allocate (WireReader::FitsElements
// rejects count fields that promise more elements than bytes remain).
// Status-level rejection is the expected outcome; parsing "successfully"
// to garbage values is tolerable, crashing is not.

TEST(WireFuzzTest, MutatedPayloadDecodersNeverCrash) {
  Rng rng(0xDEC0DEull);
  // A representative response with nested vectors — the deepest decoder.
  serve::DetectResponse resp;
  resp.request_id = 99;
  resp.wall_ms = 1.5;
  resp.stats.retries = 2;
  pipeline::TableRunResult t;
  t.result.table_name = "fuzz_table";
  core::ColumnPrediction col;
  col.column_name = "c0";
  col.admitted_types = {1, 2, 3};
  col.probabilities = {0.25f, 0.5f, 0.125f};
  t.result.columns.push_back(col);
  resp.tables.push_back(t);
  const std::string resp_bytes = serve::EncodeDetectResponse(resp);

  serve::DetectRequest req;
  req.request_id = 7;
  req.tables = {"a", "b", "c"};
  const std::string req_bytes = serve::EncodeDetectRequest(req);

  for (int iter = 0; iter < 10000; ++iter) {
    std::string bytes = (iter % 2 == 0) ? resp_bytes : req_bytes;
    // One to four mutations: bit flips and truncation.
    const int edits = 1 + static_cast<int>(rng.NextU64() % 4);
    for (int e = 0; e < edits; ++e) {
      if (bytes.empty()) break;
      if (rng.NextU64() % 4 == 0) {
        bytes.resize(rng.NextU64() % bytes.size());  // truncate
      } else {
        const size_t bit = rng.NextU64() % (bytes.size() * 8);
        bytes[bit / 8] = static_cast<char>(
            static_cast<unsigned char>(bytes[bit / 8]) ^ (1u << (bit % 8)));
      }
    }
    if (iter % 2 == 0) {
      auto r = serve::DecodeDetectResponse(bytes);
      (void)r;  // ok-or-error both fine; the property is "no crash"
    } else {
      auto r = serve::DecodeDetectRequest(bytes);
      (void)r;
    }
  }
}

// A count-field lie must fail fast instead of resizing a vector to the
// lied size: 0xFFFFFFFF admitted types backed by 8 bytes of payload.

TEST(WireFuzzTest, CountFieldLiesDoNotOverAllocate) {
  serve::WireWriter w;
  w.U32(0xFFFFFFFFu);  // "four billion tables follow"
  w.U64(42);           // ...backed by eight bytes
  const std::string lie = w.Take();
  serve::WireReader r(lie);
  EXPECT_FALSE(r.FitsElements(0xFFFFFFFFull, 4));
  EXPECT_FALSE(r.ok());

  // And through a real decoder: a DetectRequest whose table count lies.
  serve::WireWriter dr;
  dr.U64(1);      // request id
  dr.F64(0.0);    // deadline
  dr.U8(0);       // lane
  dr.U8(0);       // dtype
  dr.U32(0x7FFFFFFFu);  // table count lie
  dr.Str("only one actual table");
  auto decoded = serve::DecodeDetectRequest(dr.Take());
  EXPECT_FALSE(decoded.ok());
}

}  // namespace
}  // namespace taste
