// Differential + fault battery for the cross-replica latent cache plane
// (DESIGN.md §14): the plane is an OPTIMIZATION, so its one non-negotiable
// property is invisibility — plane-on, plane-off, and the single-process
// oracle must produce byte-identical batch results under every mix of
// remote hits, misses, respawns, quarantine invalidations, and injected
// corruption. The rig below proves that across 50 randomized seeds, for
// fp32 and int8 P2 paths, plus the degradation rules: a corrupt entry or
// frame must cost at most a recompute (or a stream re-dispatch), never a
// wrong byte.
//
// Everything here forks real processes; the suite carries the `unit` label
// (TSan instruments fork poorly; the asan/ubsan lane runs it).

#include <gtest/gtest.h>
#include <poll.h>
#include <signal.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fpu.h"
#include "common/rng.h"
#include "core/taste_detector.h"
#include "data/table_generator.h"
#include "pipeline/scheduler.h"
#include "serve/cache_plane.h"
#include "serve/router.h"
#include "serve/wire.h"
#include "text/wordpiece.h"

namespace taste {
namespace {

FlushDenormalsScope pin_fpu;

// ---------------------------------------------------------------------------
// Shared fixture: dataset/tokenizer/model are expensive and immutable, so
// one copy serves every test; detectors are built per router so latent-cache
// state never couples two configurations under comparison.

struct PlaneEnv {
  data::Dataset dataset;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer;
  std::unique_ptr<model::AdtdModel> model;
  std::vector<std::string> table_names;

  static const PlaneEnv& Get() {
    static PlaneEnv* env = [] {
      auto* e = new PlaneEnv();
      e->dataset = data::GenerateDataset(data::DatasetProfile::WikiLike(6));
      text::WordPieceTrainer trainer({.vocab_size = 400});
      for (const auto& d : data::BuildCorpusDocuments(e->dataset)) {
        trainer.AddDocument(d);
      }
      e->tokenizer =
          std::make_unique<text::WordPieceTokenizer>(trainer.Train());
      model::AdtdConfig cfg = model::AdtdConfig::Tiny(
          e->tokenizer->vocab().size(),
          data::SemanticTypeRegistry::Default().size());
      Rng rng(21);
      e->model = std::make_unique<model::AdtdModel>(cfg, rng);
      // Prepacked so the int8 tests can run; inert for fp32 contexts.
      TASTE_CHECK(e->model->PrepackQuantWeights() > 0);
      for (const auto& t : e->dataset.tables) {
        e->table_names.push_back(t.name);
      }
      return e;
    }();
    return *env;
  }

  std::unique_ptr<clouddb::SimulatedDatabase> MakeDb() const {
    clouddb::CostModel cost;
    cost.time_scale = 0.0;
    auto db = std::make_unique<clouddb::SimulatedDatabase>(cost);
    EXPECT_TRUE(db->IngestDataset(dataset).ok());
    return db;
  }

  std::unique_ptr<core::TasteDetector> MakeDetector() const {
    return std::make_unique<core::TasteDetector>(model.get(), tokenizer.get(),
                                                 core::TasteOptions{});
  }
};

pipeline::PipelineOptions WorkerPipelineOptions() {
  pipeline::PipelineOptions popt;
  popt.prep_threads = 2;
  popt.infer_threads = 2;
  return popt;
}

/// Bit-exact comparison of two batch results.
void ExpectBatchesIdentical(const pipeline::BatchResult& got,
                            const pipeline::BatchResult& want) {
  ASSERT_EQ(got.tables.size(), want.tables.size());
  for (size_t i = 0; i < want.tables.size(); ++i) {
    const auto& g = got.tables[i];
    const auto& w = want.tables[i];
    EXPECT_EQ(g.outcome, w.outcome) << i;
    EXPECT_EQ(g.result.table_name, w.result.table_name);
    ASSERT_EQ(g.result.columns.size(), w.result.columns.size()) << i;
    for (size_t c = 0; c < w.result.columns.size(); ++c) {
      const auto& gc = g.result.columns[c];
      const auto& wc = w.result.columns[c];
      EXPECT_EQ(gc.column_name, wc.column_name);
      EXPECT_EQ(gc.went_to_p2, wc.went_to_p2);
      EXPECT_EQ(gc.admitted_types, wc.admitted_types);
      ASSERT_EQ(gc.probabilities.size(), wc.probabilities.size());
      if (!wc.probabilities.empty()) {
        EXPECT_EQ(std::memcmp(gc.probabilities.data(), wc.probabilities.data(),
                              wc.probabilities.size() * sizeof(float)),
                  0)
            << g.result.table_name << "." << gc.column_name
            << ": probabilities differ bitwise";
      }
    }
  }
}

/// Oracle: the same tables through a single-process executor with its own
/// detector (fresh or warm cache — both are byte-identical by design).
pipeline::BatchResult OracleRun(
    const PlaneEnv& env, core::TasteDetector* det,
    const std::vector<std::string>& tables,
    tensor::P2Dtype dtype = tensor::P2Dtype::kFp32) {
  auto db = env.MakeDb();
  pipeline::PipelineOptions popt = WorkerPipelineOptions();
  popt.p2_dtype = dtype;
  pipeline::PipelineExecutor exec(det, db.get(), popt);
  return exec.RunBatch(tables);
}

int64_t CounterOr(const obs::Registry::Snapshot& snap, const std::string& name,
                  int64_t fallback) {
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? fallback : it->second;
}

/// SIGKILLs a replica and drives the supervisor until it is respawned.
/// Returns false if recovery did not complete inside the budget.
bool KillAndRespawn(serve::Router* router, int id) {
  const pid_t victim = router->supervisor().replica(id)->pid;
  if (::kill(victim, SIGKILL) != 0) return false;
  for (int spin = 0; spin < 400; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (!router->supervisor().ReapDead().empty()) break;
  }
  return router->MaintainUntilAllUp(10000.0);
}

/// A synthetic but fully populated cache entry for plane-store unit tests
/// (no model required; the store only sees serialized bytes + CRC).
std::string EncodedEntry(const std::string& table, float seed) {
  model::CachedMetadata m;
  m.input.table_name = table;
  m.input.token_ids = {1, 2, 3};
  m.input.column_anchors = {0};
  m.input.column_ordinals = {0};
  m.input.column_names = {"c"};
  m.input.features = tensor::Tensor::FromVector({1, 4}, {seed, 1, 2, 3});
  m.input.attention_mask =
      tensor::Tensor::FromVector({3, 3}, std::vector<float>(9, 1.0f));
  m.input.num_columns = 1;
  m.encoding.anchor_states =
      tensor::Tensor::FromVector({1, 4}, {seed, -1, -2, -3});
  m.encoding.logits = tensor::Tensor::FromVector({1, 2}, {seed, 0.5f});
  return serve::EncodeCachedMetadata(m);
}

// ---------------------------------------------------------------------------
// Plane store semantics (no processes)

TEST(CachePlaneStoreTest, AdmitLookupRefreshAndCrcGate) {
  serve::CachePlane plane;
  const std::string bytes = EncodedEntry("t", 1.0f);
  EXPECT_TRUE(plane.Admit("t#0", bytes, /*publisher=*/0));
  ASSERT_EQ(plane.size(), 1u);

  auto hit = plane.Lookup("t#0");
  ASSERT_TRUE(hit.has_value());
  // Serving the ORIGINAL bytes, not a re-encode: a plane hit is bit-for-bit
  // what the publisher computed.
  EXPECT_EQ(*hit, bytes);
  EXPECT_FALSE(plane.Lookup("t#1").has_value());
  EXPECT_EQ(plane.stats().hits, 1);
  EXPECT_EQ(plane.stats().misses, 1);

  // A flipped bit anywhere in the entry must be rejected at admit time.
  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] ^= 0x04;
  EXPECT_FALSE(plane.Admit("t#2", corrupt, 0));
  EXPECT_EQ(plane.stats().crc_rejects, 1);
  EXPECT_EQ(plane.size(), 1u);

  // Refresh replaces bytes and publisher without duplicating the key.
  const std::string bytes2 = EncodedEntry("t", 2.0f);
  EXPECT_TRUE(plane.Admit("t#0", bytes2, /*publisher=*/1));
  EXPECT_EQ(plane.size(), 1u);
  EXPECT_EQ(*plane.Lookup("t#0"), bytes2);
}

TEST(CachePlaneStoreTest, ByteBudgetEvictsLruNotHot) {
  const std::string a = EncodedEntry("a", 1.0f);
  serve::CachePlane::Options opt;
  // Room for roughly two entries.
  opt.max_bytes = static_cast<int64_t>(a.size() * 2 + a.size() / 2);
  serve::CachePlane plane(opt);
  ASSERT_TRUE(plane.Admit("a#0", a, 0));
  ASSERT_TRUE(plane.Admit("b#0", EncodedEntry("b", 2.0f), 0));
  // Touch a#0 so b#0 is the LRU tail, then overflow.
  ASSERT_TRUE(plane.Lookup("a#0").has_value());
  ASSERT_TRUE(plane.Admit("c#0", EncodedEntry("c", 3.0f), 0));
  EXPECT_GE(plane.stats().evictions, 1);
  EXPECT_TRUE(plane.Lookup("a#0").has_value());
  EXPECT_FALSE(plane.Lookup("b#0").has_value());
  EXPECT_TRUE(plane.Lookup("c#0").has_value());
  EXPECT_LE(plane.bytes(), opt.max_bytes);
}

TEST(CachePlaneStoreTest, QuarantineInvalidationDropsOnlyThatPublisher) {
  serve::CachePlane plane;
  ASSERT_TRUE(plane.Admit("a#0", EncodedEntry("a", 1.0f), /*publisher=*/0));
  ASSERT_TRUE(plane.Admit("a#1", EncodedEntry("a", 2.0f), /*publisher=*/0));
  ASSERT_TRUE(plane.Admit("b#0", EncodedEntry("b", 3.0f), /*publisher=*/1));
  EXPECT_EQ(plane.InvalidateFromPublisher(0), 2u);
  EXPECT_EQ(plane.size(), 1u);
  EXPECT_FALSE(plane.Lookup("a#0").has_value());
  EXPECT_TRUE(plane.Lookup("b#0").has_value());
  EXPECT_EQ(plane.stats().invalidations, 2);
  // Refresh by a clean publisher resurrects the key.
  EXPECT_TRUE(plane.Admit("a#0", EncodedEntry("a", 1.0f), 1));
  EXPECT_TRUE(plane.Lookup("a#0").has_value());
}

TEST(CachePlaneStoreTest, WarmupSelectsOwnedHottestFirst) {
  serve::CachePlane plane;
  ASSERT_TRUE(plane.Admit("a#0", EncodedEntry("a", 1.0f), 0));
  ASSERT_TRUE(plane.Admit("a#1", EncodedEntry("a", 2.0f), 0));
  ASSERT_TRUE(plane.Admit("b#0", EncodedEntry("b", 3.0f), 1));
  // Heat a#1 twice, a#0 once.
  ASSERT_TRUE(plane.Lookup("a#1").has_value());
  ASSERT_TRUE(plane.Lookup("a#1").has_value());
  ASSERT_TRUE(plane.Lookup("a#0").has_value());

  // Ownership map: table "a" -> replica 7, everything else elsewhere.
  auto owner_of = [](const std::string& table) { return table == "a" ? 7 : 3; };
  auto warm = plane.WarmupEntriesFor(7, owner_of, /*max_entries=*/8);
  ASSERT_EQ(warm.size(), 2u);
  EXPECT_EQ(warm[0].first, "a#1");  // hottest first
  EXPECT_EQ(warm[1].first, "a#0");
  // Truncation honours max_entries.
  EXPECT_EQ(plane.WarmupEntriesFor(7, owner_of, 1).size(), 1u);
  // No owned tables -> empty push.
  EXPECT_TRUE(plane.WarmupEntriesFor(5, owner_of, 8).empty());
  EXPECT_EQ(serve::CachePlane::TableOfKey("tbl#12"), "tbl");
  EXPECT_EQ(serve::CachePlane::TableOfKey("nohash"), "nohash");
}

// ---------------------------------------------------------------------------
// fp32/int8 sharing: the plane stores P1 latents, which are dtype
// independent, so one serialized entry serves both towers (PR 8 contract
// lifted to the wire).

TEST(CachePlaneStoreTest, Fp32AndInt8EncodingsShareOneEntryByteForByte) {
  const PlaneEnv& env = PlaneEnv::Get();
  auto det = env.MakeDetector();
  auto db = env.MakeDb();
  auto conn = db->Connect();
  core::TasteDetector::Job job;
  ASSERT_TRUE(det->PrepareP1(conn.get(), env.table_names[0], &job).ok());
  ASSERT_FALSE(job.chunks.empty());

  tensor::ExecContext::Options int8_opts;
  int8_opts.no_grad = true;
  int8_opts.p2_dtype = tensor::P2Dtype::kInt8;
  tensor::ExecContext int8_ctx(int8_opts);

  model::CachedMetadata fp32{job.chunks[0],
                             env.model->ForwardMetadata(job.chunks[0])};
  model::CachedMetadata int8{
      job.chunks[0], env.model->ForwardMetadata(job.chunks[0], &int8_ctx)};
  // Identical wire bytes: an entry published by an fp32 replica is exactly
  // the entry an int8 replica would have published, so a remote hit is
  // valid under either dtype.
  EXPECT_EQ(serve::EncodeCachedMetadata(fp32),
            serve::EncodeCachedMetadata(int8));
}

// ---------------------------------------------------------------------------
// The 50-seed differential rig: plane-on == plane-off == oracle, bit for
// bit, across randomized table mixes (duplicates allowed, random order).

TEST(CachePlaneDiffTest, PlaneOnMatchesPlaneOffAndOracleAcross50Seeds) {
  const PlaneEnv& env = PlaneEnv::Get();
  auto det_oracle = env.MakeDetector();
  auto det_off = env.MakeDetector();
  auto det_on = env.MakeDetector();
  auto db_off = env.MakeDb();
  auto db_on = env.MakeDb();

  serve::WorkerEnv wenv_off;
  wenv_off.detector = det_off.get();
  wenv_off.db = db_off.get();
  wenv_off.pipeline_options = WorkerPipelineOptions();
  serve::WorkerEnv wenv_on = wenv_off;
  wenv_on.detector = det_on.get();
  wenv_on.db = db_on.get();
  wenv_on.cache_plane = true;
  wenv_on.cache_plane_timeout_ms = 2000;  // no flaky timeout-degrades here

  serve::RouterOptions ropt;
  ropt.supervisor.replicas = 3;
  serve::Router off(wenv_off, ropt);
  serve::Router on(wenv_on, ropt);
  ASSERT_TRUE(off.Start().ok());
  ASSERT_TRUE(on.Start().ok());

  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed * 7919);
    const size_t n = 1 + rng.NextU64() % 4;
    std::vector<std::string> tables;
    for (size_t k = 0; k < n; ++k) {
      tables.push_back(env.table_names[rng.NextU64() % env.table_names.size()]);
    }
    const pipeline::BatchResult want = OracleRun(env, det_oracle.get(), tables);
    ExpectBatchesIdentical(off.RunBatch(tables), want);
    ExpectBatchesIdentical(on.RunBatch(tables), want);
    if (::testing::Test::HasFatalFailure()) break;
  }
  // The plane actually carried traffic: every first compute was published.
  EXPECT_GT(on.cache_plane().stats().fills, 0);
  EXPECT_EQ(on.stats().replica_deaths, 0);
  EXPECT_EQ(off.cache_plane().stats().fills, 0);  // plane off = no traffic
  off.Shutdown();
  on.Shutdown();
}

// ---------------------------------------------------------------------------
// Remote hit vs recompute equivalence: a respawned (cold) replica answers
// its tables from the plane and the bytes are indistinguishable from a
// recompute. warmup_keys=0 forces the lookup path (no push).

void RunRespawnRemoteHitCase(tensor::P2Dtype dtype) {
  const PlaneEnv& env = PlaneEnv::Get();
  auto det_router = env.MakeDetector();
  auto det_oracle = env.MakeDetector();
  auto db = env.MakeDb();
  serve::WorkerEnv wenv;
  wenv.detector = det_router.get();
  wenv.db = db.get();
  wenv.pipeline_options = WorkerPipelineOptions();
  wenv.pipeline_options.p2_dtype = dtype;
  wenv.cache_plane = true;
  wenv.cache_plane_timeout_ms = 2000;
  serve::RouterOptions ropt;
  ropt.supervisor.replicas = 2;
  ropt.warmup_keys = 0;  // lookups, not pushes

  serve::Router router(wenv, ropt);
  ASSERT_TRUE(router.Start().ok());

  // Batch 1 populates the plane (every chunk publishes on compute-miss).
  (void)router.RunBatch(env.table_names);
  ASSERT_GT(router.cache_plane().stats().fills, 0);

  // There must be at least one table the victim owns, or the test proves
  // nothing; with 6 tables over 2 replicas this holds for the fixed seed.
  serve::ConsistentHashRing ring(ropt.supervisor.replicas, ropt.vnodes);
  int victim = -1;
  for (const auto& t : env.table_names) {
    const int owner = ring.NodeFor(t, [](int) { return true; });
    if (owner >= 0) {
      victim = owner;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  ASSERT_TRUE(KillAndRespawn(&router, victim));

  // Batch 2: the respawned replica is cold (fresh fork of the router's
  // never-computed image) so its tables go local-miss -> plane hit.
  const int64_t hits_before = router.cache_plane().stats().hits;
  pipeline::BatchResult got = router.RunBatch(env.table_names);
  ExpectBatchesIdentical(
      got, OracleRun(env, det_oracle.get(), env.table_names, dtype));
  EXPECT_GT(router.cache_plane().stats().hits, hits_before);

  auto snap = router.Scrape();
  ASSERT_TRUE(snap.ok());
  EXPECT_GE(CounterOr(*snap, "taste_cache_remote_hits_total", 0), 1);
  router.Shutdown();
}

TEST(CachePlaneDiffTest, RespawnedReplicaRemoteHitsByteIdenticalFp32) {
  RunRespawnRemoteHitCase(tensor::P2Dtype::kFp32);
}

TEST(CachePlaneDiffTest, RespawnedReplicaRemoteHitsByteIdenticalInt8) {
  RunRespawnRemoteHitCase(tensor::P2Dtype::kInt8);
}

// ---------------------------------------------------------------------------
// Warm-from-peers: with warmup_keys on, the respawn observer pushes the hot
// set down the fresh socket before any request, so the replica re-enters
// service with LOCAL hits (no lookup round-trips at all).

TEST(CachePlaneDiffTest, RespawnWarmupRestoresHotSetWithoutLookups) {
  const PlaneEnv& env = PlaneEnv::Get();
  auto det_router = env.MakeDetector();
  auto det_oracle = env.MakeDetector();
  auto db = env.MakeDb();
  serve::WorkerEnv wenv;
  wenv.detector = det_router.get();
  wenv.db = db.get();
  wenv.pipeline_options = WorkerPipelineOptions();
  wenv.cache_plane = true;
  wenv.cache_plane_timeout_ms = 2000;
  serve::RouterOptions ropt;
  ropt.supervisor.replicas = 2;
  ropt.warmup_keys = 256;  // cover the whole working set

  serve::Router router(wenv, ropt);
  ASSERT_TRUE(router.Start().ok());
  (void)router.RunBatch(env.table_names);
  ASSERT_GT(router.cache_plane().stats().fills, 0);

  ASSERT_TRUE(KillAndRespawn(&router, 0));
  // The push happened inside the respawn hook, before any detect frame.
  EXPECT_GT(router.cache_plane().stats().warmup_pushes, 0);

  pipeline::BatchResult got = router.RunBatch(env.table_names);
  ExpectBatchesIdentical(got,
                         OracleRun(env, det_oracle.get(), env.table_names));

  auto snap = router.Scrape();
  ASSERT_TRUE(snap.ok());
  // The respawned replica absorbed pushed entries...
  EXPECT_GE(CounterOr(*snap, "taste_cache_warmup_received_total", 0), 1);
  // ...and, warm, never had to ask the plane for them (its whole owned set
  // was pushed): warm-from-peers beats the cold lookup path outright.
  EXPECT_EQ(CounterOr(*snap, "taste_cache_remote_hits_total", 0), 0);
  EXPECT_EQ(CounterOr(*snap, "taste_cache_remote_timeouts_total", 0), 0);
  router.Shutdown();
}

// ---------------------------------------------------------------------------
// Miss-storm: quarantining a replica drops everything it published (its
// bytes are no longer trusted), so peers recompute — slower, never wrong.

TEST(CachePlaneDiffTest, QuarantineInvalidationForcesByteIdenticalRecompute) {
  const PlaneEnv& env = PlaneEnv::Get();
  auto det_router = env.MakeDetector();
  auto det_oracle = env.MakeDetector();
  auto db = env.MakeDb();
  serve::WorkerEnv wenv;
  wenv.detector = det_router.get();
  wenv.db = db.get();
  wenv.pipeline_options = WorkerPipelineOptions();
  wenv.cache_plane = true;
  wenv.cache_plane_timeout_ms = 2000;
  serve::RouterOptions ropt;
  ropt.supervisor.replicas = 3;

  serve::Router router(wenv, ropt);
  ASSERT_TRUE(router.Start().ok());
  (void)router.RunBatch(env.table_names);
  const int64_t fills = router.cache_plane().stats().fills;
  ASSERT_GT(fills, 0);

  // Three gray verdicts cross the 0.5 error-EWMA threshold: quarantine
  // fires the observer, which must drop replica 0's published entries.
  router.supervisor().RecordLegError(0);
  router.supervisor().RecordLegError(0);
  router.supervisor().RecordLegError(0);
  ASSERT_EQ(router.supervisor().replica(0)->state,
            serve::ReplicaState::kQuarantined);
  EXPECT_GT(router.cache_plane().stats().invalidations, 0);

  // Batch 2 re-routes replica 0's tables to ring successors, whose plane
  // lookups now miss (the entries are gone) — a miss storm that must end
  // in byte-identical recomputes, and repopulate the plane.
  pipeline::BatchResult got = router.RunBatch(env.table_names);
  ExpectBatchesIdentical(got,
                         OracleRun(env, det_oracle.get(), env.table_names));
  EXPECT_GT(router.cache_plane().stats().fills, fills);
  router.Shutdown();
}

// ---------------------------------------------------------------------------
// Injected corruption (the chaos hooks, deterministically aimed)

TEST(CachePlaneDiffTest, CorruptPublishedEntryIsRejectedNotServed) {
  const PlaneEnv& env = PlaneEnv::Get();
  auto det_router = env.MakeDetector();
  auto det_oracle = env.MakeDetector();
  auto db = env.MakeDb();
  serve::WorkerEnv wenv;
  wenv.detector = det_router.get();
  wenv.db = db.get();
  wenv.pipeline_options = WorkerPipelineOptions();
  wenv.cache_plane = true;
  wenv.cache_plane_timeout_ms = 2000;
  serve::RouterOptions ropt;
  ropt.supervisor.replicas = 2;

  // The ring owner of table_names[0] publishes bit-flipped entries for it
  // (entry CRC broken, frame CRC valid): the plane must reject them at
  // admit, count them, and NOT penalise the stream.
  serve::ConsistentHashRing ring(ropt.supervisor.replicas, ropt.vnodes);
  const std::string victim_table = env.table_names[0];
  wenv.cache_entry_corrupt_replica =
      ring.NodeFor(victim_table, [](int) { return true; });
  wenv.cache_entry_corrupt_table = victim_table;

  serve::Router router(wenv, ropt);
  ASSERT_TRUE(router.Start().ok());
  pipeline::BatchResult got = router.RunBatch(env.table_names);
  ExpectBatchesIdentical(got,
                         OracleRun(env, det_oracle.get(), env.table_names));
  EXPECT_GT(router.cache_plane().stats().crc_rejects, 0);
  EXPECT_EQ(router.stats().replica_deaths, 0);
  router.Shutdown();
}

TEST(CachePlaneDiffTest, CorruptCacheFramePoisonsStreamNeverResults) {
  const PlaneEnv& env = PlaneEnv::Get();
  auto det_router = env.MakeDetector();
  auto det_oracle = env.MakeDetector();
  auto db = env.MakeDb();
  serve::WorkerEnv wenv;
  wenv.detector = det_router.get();
  wenv.db = db.get();
  wenv.pipeline_options = WorkerPipelineOptions();
  wenv.cache_plane = true;
  wenv.cache_plane_timeout_ms = 2000;
  serve::RouterOptions ropt;
  ropt.supervisor.replicas = 3;

  // The owner of table_names[1] sends its publish frames through
  // WriteFrameCorrupted: the frame CRC fails, the router must treat the
  // whole stream as poisoned (kill + re-dispatch) — exactly a corrupt
  // detect response's fate — and the batch stays byte-identical.
  serve::ConsistentHashRing ring(ropt.supervisor.replicas, ropt.vnodes);
  const std::string victim_table = env.table_names[1];
  wenv.cache_frame_corrupt_replica =
      ring.NodeFor(victim_table, [](int) { return true; });
  wenv.cache_frame_corrupt_table = victim_table;

  serve::Router router(wenv, ropt);
  ASSERT_TRUE(router.Start().ok());
  pipeline::BatchResult got = router.RunBatch(env.table_names);
  ExpectBatchesIdentical(got,
                         OracleRun(env, det_oracle.get(), env.table_names));
  EXPECT_GE(router.stats().replica_deaths, 1);
  EXPECT_GE(router.stats().redispatched_tables, 1);
  router.Shutdown();
}

}  // namespace
}  // namespace taste
