// Differential test rig for cross-table P2 micro-batching: the batched
// content-tower forward (AdtdModel::ForwardContentBatch, and the
// ServingScheduler / PipelineExecutor layers above it) must be BYTE-identical
// to the sequential per-chunk ForwardContent across randomized table mixes,
// batch sizes, item orders (padding widths vary with each item's content
// sequence length), and cache hit/miss interleavings. The guarantee rests
// on the kernel determinism contract (tensor/kernels.h: every output
// element accumulates in fixed k-order from only its own row/column) and
// exact softmax masking (-1e9 underflows to 0 after exp) — this rig is the
// executable proof.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "common/fpu.h"
#include "core/taste_detector.h"
#include "data/table_generator.h"
#include "pipeline/scheduler.h"
#include "pipeline/serving_scheduler.h"

namespace taste::core {
namespace {

// Pin the FPU environment of the test thread; worker threads are armed by
// the tensor library on their first op.
FlushDenormalsScope pin_fpu;

struct Env {
  data::Dataset dataset;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer;
  std::unique_ptr<model::AdtdModel> model;
  std::unique_ptr<clouddb::SimulatedDatabase> db;
  std::vector<std::string> table_names;

  static Env Make(int tables, bool prepack = false) {
    Env e;
    e.dataset = data::GenerateDataset(data::DatasetProfile::WikiLike(tables));
    text::WordPieceTrainer trainer({.vocab_size = 400});
    for (const auto& d : data::BuildCorpusDocuments(e.dataset)) {
      trainer.AddDocument(d);
    }
    e.tokenizer = std::make_unique<text::WordPieceTokenizer>(trainer.Train());
    model::AdtdConfig cfg = model::AdtdConfig::Tiny(
        e.tokenizer->vocab().size(),
        data::SemanticTypeRegistry::Default().size());
    Rng rng(11);
    e.model = std::make_unique<model::AdtdModel>(cfg, rng);
    if (prepack) TASTE_CHECK(e.model->PrepackQuantWeights() > 0);
    e.db = std::make_unique<clouddb::SimulatedDatabase>(clouddb::CostModel{});
    TASTE_CHECK(e.db->IngestDataset(e.dataset).ok());
    for (const auto& t : e.dataset.tables) e.table_names.push_back(t.name);
    return e;
  }
};

/// An ExecContext that runs P2 content forwards through the prepacked int8
/// kernels (see tensor/exec_context.h P2Dtype).
tensor::ExecContext::Options Int8CtxOptions() {
  tensor::ExecContext::Options o;
  o.no_grad = true;
  o.p2_dtype = tensor::P2Dtype::kInt8;
  return o;
}

/// One P2 work item harvested from a real detector job, plus the reference
/// logits the sequential path produced for it.
struct Item {
  model::AdtdModel::P2BatchItem batch_item;
  tensor::Tensor want;  // sequential ForwardContent logits
};

/// Runs P1 prep/infer + P2 prep for every table (the untrained Tiny model
/// leaves every column uncertain, so all tables enter P2) and harvests all
/// (content, meta, latents) triples. Jobs are kept alive in `jobs` so the
/// pointers in the returned items stay valid.
std::vector<Item> HarvestItems(
    const Env& e, const TasteDetector& det,
    std::vector<std::unique_ptr<TasteDetector::Job>>* jobs) {
  auto conn = e.db->Connect();
  std::vector<Item> items;
  for (const auto& name : e.table_names) {
    auto job = std::make_unique<TasteDetector::Job>();
    TASTE_CHECK(det.PrepareP1(conn.get(), name, job.get()).ok());
    TASTE_CHECK(det.InferP1(job.get()).ok());
    TASTE_CHECK(det.PrepareP2(conn.get(), job.get()).ok());
    for (size_t i = 0; i < job->chunks.size(); ++i) {
      for (const auto& content : job->contents[i]) {
        if (content.scanned.empty()) continue;
        Item it;
        it.batch_item = {&content, &job->chunks[i], &job->encodings[i]};
        it.want = det.model().ForwardContent(content, job->chunks[i],
                                             job->encodings[i]);
        items.push_back(std::move(it));
      }
    }
    jobs->push_back(std::move(job));
  }
  TASTE_CHECK(!items.empty());
  return items;
}

::testing::AssertionResult BytesEqual(const tensor::Tensor& want,
                                      const tensor::Tensor& got) {
  if (want.dim(0) != got.dim(0) || want.dim(1) != got.dim(1)) {
    return ::testing::AssertionFailure()
           << "shape (" << want.dim(0) << "," << want.dim(1) << ") vs ("
           << got.dim(0) << "," << got.dim(1) << ")";
  }
  if (std::memcmp(want.data(), got.data(),
                  static_cast<size_t>(want.numel()) * sizeof(float)) != 0) {
    for (int64_t i = 0; i < want.numel(); ++i) {
      if (want.data()[i] != got.data()[i]) {
        return ::testing::AssertionFailure()
               << "first byte-diff at flat index " << i << ": "
               << want.data()[i] << " vs " << got.data()[i];
      }
    }
    return ::testing::AssertionFailure() << "memcmp diff (sign of zero?)";
  }
  return ::testing::AssertionSuccess();
}

TEST(BatchingDiffTest, SingleItemBatchMatchesSequential) {
  Env e = Env::Make(4);
  TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  std::vector<std::unique_ptr<TasteDetector::Job>> jobs;
  auto items = HarvestItems(e, det, &jobs);
  for (const Item& it : items) {
    auto out = det.model().ForwardContentBatch({it.batch_item});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(BytesEqual(it.want, out[0]));
  }
}

TEST(BatchingDiffTest, RandomizedMixesByteIdenticalAcross50Seeds) {
  // >= 50 randomized batch compositions: random size (1..8), random item
  // mix across tables (duplicates allowed — the same chunk may be in
  // flight twice under retries), random order. Padding varies per draw
  // because items have different content sequence lengths. Every item's
  // slice must equal its sequential logits bit for bit.
  Env e = Env::Make(6);
  TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  std::vector<std::unique_ptr<TasteDetector::Job>> jobs;
  auto items = HarvestItems(e, det, &jobs);
  ASSERT_GE(items.size(), 4u);
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed * 7919);
    const size_t batch_size = 1 + rng.NextU64() % 8;
    std::vector<const Item*> picked;
    std::vector<model::AdtdModel::P2BatchItem> batch;
    for (size_t k = 0; k < batch_size; ++k) {
      const Item& it = items[rng.NextU64() % items.size()];
      picked.push_back(&it);
      batch.push_back(it.batch_item);
    }
    auto out = det.model().ForwardContentBatch(batch);
    ASSERT_EQ(out.size(), batch.size());
    for (size_t k = 0; k < batch.size(); ++k) {
      EXPECT_TRUE(BytesEqual(picked[k]->want, out[k]))
          << "seed " << seed << " slot " << k;
    }
  }
}

TEST(BatchingDiffTest, SchedulerPathByteIdenticalAcross50Seeds) {
  // The same 50-seed sweep, but each composition is submitted through the
  // ServingScheduler by concurrent callers (max_inflight 1, so arrivals
  // coalesce into shared packed forwards). Whatever batches actually form,
  // every request's logits must equal its sequential reference bit for bit.
  Env e = Env::Make(6);
  TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  std::vector<std::unique_ptr<TasteDetector::Job>> jobs;
  auto items = HarvestItems(e, det, &jobs);
  ASSERT_GE(items.size(), 4u);

  pipeline::ServingScheduler::Options sopt;
  sopt.scheduling.max_items = 8;
  sopt.scheduling.max_inflight_batches = 1;
  pipeline::ServingScheduler sched(&det.model(), sopt);
  int64_t total = 0;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed * 104729);
    const size_t n = 1 + rng.NextU64() % 6;
    std::vector<const Item*> picked;
    for (size_t k = 0; k < n; ++k) {
      picked.push_back(&items[rng.NextU64() % items.size()]);
    }
    std::vector<std::thread> threads;
    std::vector<int> failures(n, 0);
    for (size_t k = 0; k < n; ++k) {
      threads.emplace_back([&, k] {
        const Item& it = *picked[k];
        const pipeline::Lane lane =
            k % 2 == 0 ? pipeline::Lane::kInteractive : pipeline::Lane::kBulk;
        auto got = sched.Submit("tbl", *it.batch_item.content,
                                *it.batch_item.meta,
                                *it.batch_item.meta_encoding,
                                /*cancel=*/nullptr, /*ctx=*/nullptr, lane);
        if (!got.ok() || !BytesEqual(it.want, *got)) ++failures[k];
      });
    }
    for (auto& th : threads) th.join();
    for (size_t k = 0; k < n; ++k) {
      EXPECT_EQ(failures[k], 0) << "seed " << seed << " slot " << k;
    }
    total += static_cast<int64_t>(n);
  }
  EXPECT_EQ(sched.stats().items, total);
  EXPECT_EQ(sched.stats().expired_in_queue, 0);
}

TEST(BatchingDiffTest, CacheHitAndMissLatentsProduceSameBytes) {
  // The latents an item attends over may come from the latent cache (hit),
  // the job's own copy, or a metadata-tower recompute (miss after
  // eviction). All three hold bitwise-equal tensors, so the batched
  // forward must not care which one is plugged in.
  Env e = Env::Make(3);
  TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  std::vector<std::unique_ptr<TasteDetector::Job>> jobs;
  auto items = HarvestItems(e, det, &jobs);
  const Item& it = items.front();

  // Recompute (cache-miss path) and cached-copy variants of the latents.
  model::AdtdModel::MetadataEncoding recomputed =
      det.model().ForwardMetadata(*it.batch_item.meta);
  model::AdtdModel::P2BatchItem miss_item = it.batch_item;
  miss_item.meta_encoding = &recomputed;

  // Interleave hit- and miss-latent items in one batch.
  auto out = det.model().ForwardContentBatch(
      {it.batch_item, miss_item, it.batch_item});
  ASSERT_EQ(out.size(), 3u);
  for (const auto& logits : out) EXPECT_TRUE(BytesEqual(it.want, logits));
}

TEST(BatchingDiffTest, SchedulerCoalescedResultsMatchSequential) {
  // Drive the continuous-batching scheduler from several threads at once
  // across both lanes; every returned logits tensor must equal its item's
  // sequential reference regardless of how requests coalesced.
  Env e = Env::Make(6);
  TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  std::vector<std::unique_ptr<TasteDetector::Job>> jobs;
  auto items = HarvestItems(e, det, &jobs);

  pipeline::ServingScheduler::Options sopt;
  sopt.scheduling.max_items = 4;
  sopt.scheduling.max_inflight_batches = 1;  // maximal coalescing
  pipeline::ServingScheduler sched(&det.model(), sopt);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 6;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      const pipeline::Lane lane =
          t % 2 == 0 ? pipeline::Lane::kInteractive : pipeline::Lane::kBulk;
      for (int k = 0; k < kPerThread; ++k) {
        const Item& it = items[rng.NextU64() % items.size()];
        auto got = sched.Submit("tbl", *it.batch_item.content,
                                *it.batch_item.meta,
                                *it.batch_item.meta_encoding,
                                /*cancel=*/nullptr, /*ctx=*/nullptr, lane);
        if (!got.ok() || !BytesEqual(it.want, *got)) ++failures[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
  // Every request was served by some batch; coalescing must not lose or
  // duplicate items (and both lanes rode the same forwards).
  EXPECT_EQ(sched.stats().items, kThreads * kPerThread);
  EXPECT_GE(sched.stats().batches, 1);
  EXPECT_EQ(sched.stats().expired_in_queue, 0);
  EXPECT_EQ(sched.stats().lane_items[0] + sched.stats().lane_items[1],
            kThreads * kPerThread);
}

TEST(BatchingDiffTest, SchedulerHonorsExpiredToken) {
  Env e = Env::Make(2);
  TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  std::vector<std::unique_ptr<TasteDetector::Job>> jobs;
  auto items = HarvestItems(e, det, &jobs);
  const Item& it = items.front();
  pipeline::ServingScheduler sched(&det.model(), {});
  CancelToken fired(Deadline::AfterMillis(-1.0));
  auto got = sched.Submit("tbl", *it.batch_item.content, *it.batch_item.meta,
                          *it.batch_item.meta_encoding, &fired, nullptr);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(sched.stats().expired_in_queue, 1);
  EXPECT_EQ(sched.stats().batches, 0);  // shed before any batch formed
}

TEST(BatchingDiffTest, ExecutorWithBatchingByteIdenticalToSequential) {
  // End to end: the pipelined executor with the serving scheduler armed
  // must produce bit-for-bit the probabilities of direct sequential
  // detection, whatever batches its four infer workers happened to form.
  Env e = Env::Make(8);
  TasteDetector det(e.model.get(), e.tokenizer.get(), {.cache_shards = 4});
  pipeline::PipelineOptions popt;
  popt.infer_threads = 4;
  popt.scheduling.enabled = true;
  popt.scheduling.max_items = 8;
  popt.scheduling.max_inflight_batches = 1;
  pipeline::PipelineExecutor exec(&det, e.db.get(), popt);
  auto got = exec.Run(e.table_names);
  ASSERT_TRUE(got.ok());
  auto conn = e.db->Connect();
  for (size_t i = 0; i < e.table_names.size(); ++i) {
    auto want = det.DetectTable(conn.get(), e.table_names[i]);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(want->columns.size(), (*got)[i].columns.size());
    for (size_t c = 0; c < want->columns.size(); ++c) {
      const auto& w = want->columns[c];
      const auto& g = (*got)[i].columns[c];
      EXPECT_EQ(w.admitted_types, g.admitted_types);
      ASSERT_EQ(w.probabilities.size(), g.probabilities.size());
      for (size_t p = 0; p < w.probabilities.size(); ++p) {
        EXPECT_EQ(w.probabilities[p], g.probabilities[p])
            << e.table_names[i] << " col " << c << " prob " << p;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Int8 determinism (DESIGN.md §12). The int8 path's contract is weaker
// than fp32-identity but just as hard: the SAME bytes across runs, batch
// compositions, and replicas — never the fp32 bytes (accuracy vs fp32 is
// tolerance-gated by tools/accuracy_gate.py, not byte-compared).

TEST(BatchingDiffTest, Int8BatchByteIdenticalToInt8SoloAcross50Seeds) {
  Env e = Env::Make(6, /*prepack=*/true);
  TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  std::vector<std::unique_ptr<TasteDetector::Job>> jobs;
  auto items = HarvestItems(e, det, &jobs);
  ASSERT_GE(items.size(), 4u);

  // Int8 solo references, plus proof the quantized tower actually ran:
  // logits must differ from the fp32 references somewhere.
  tensor::ExecContext int8_ctx(Int8CtxOptions());
  std::vector<tensor::Tensor> int8_want;
  bool any_diff_from_fp32 = false;
  for (const Item& it : items) {
    int8_want.push_back(det.model().ForwardContent(
        *it.batch_item.content, *it.batch_item.meta,
        *it.batch_item.meta_encoding, &int8_ctx));
    if (!BytesEqual(it.want, int8_want.back())) any_diff_from_fp32 = true;
  }
  EXPECT_TRUE(any_diff_from_fp32)
      << "int8 context produced fp32 bytes everywhere — gate inactive?";

  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed * 7919);
    const size_t batch_size = 1 + rng.NextU64() % 8;
    std::vector<size_t> picked;
    std::vector<model::AdtdModel::P2BatchItem> batch;
    for (size_t k = 0; k < batch_size; ++k) {
      const size_t idx = rng.NextU64() % items.size();
      picked.push_back(idx);
      batch.push_back(items[idx].batch_item);
    }
    auto out = det.model().ForwardContentBatch(batch, &int8_ctx);
    ASSERT_EQ(out.size(), batch.size());
    for (size_t k = 0; k < batch.size(); ++k) {
      EXPECT_TRUE(BytesEqual(int8_want[picked[k]], out[k]))
          << "seed " << seed << " slot " << k;
    }
  }
}

TEST(BatchingDiffTest, Int8RunToRunBytesStableAcrossContexts) {
  // Replica byte-agreement proxy: two independent int8 contexts (fresh
  // buffer pools, as two forked replicas would have) produce the same
  // bytes for the same items, batched or solo, with or without an
  // intra-op pool.
  Env e = Env::Make(4, /*prepack=*/true);
  TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  std::vector<std::unique_ptr<TasteDetector::Job>> jobs;
  auto items = HarvestItems(e, det, &jobs);

  std::vector<model::AdtdModel::P2BatchItem> batch;
  for (const Item& it : items) batch.push_back(it.batch_item);

  tensor::ExecContext ctx_a(Int8CtxOptions());
  auto run_a = det.model().ForwardContentBatch(batch, &ctx_a);
  tensor::ExecContext ctx_b(Int8CtxOptions());
  auto run_b = det.model().ForwardContentBatch(batch, &ctx_b);
  auto opts_pool = Int8CtxOptions();
  opts_pool.intra_op_threads = 2;
  tensor::ExecContext ctx_c(opts_pool);
  auto run_c = det.model().ForwardContentBatch(batch, &ctx_c);
  ASSERT_EQ(run_a.size(), batch.size());
  for (size_t k = 0; k < batch.size(); ++k) {
    EXPECT_TRUE(BytesEqual(run_a[k], run_b[k])) << "slot " << k;
    EXPECT_TRUE(BytesEqual(run_a[k], run_c[k])) << "pooled slot " << k;
  }
}

TEST(BatchingDiffTest, Int8P1AndCacheBytesAreDtypeIndependent) {
  // The quant region only covers content forwards: P1 metadata latents —
  // what the latent cache stores — must be byte-identical under an int8
  // context, so cache entries written by an fp32 process are valid in an
  // int8 one and vice versa.
  Env e = Env::Make(3, /*prepack=*/true);
  TasteDetector det(e.model.get(), e.tokenizer.get(), {});
  std::vector<std::unique_ptr<TasteDetector::Job>> jobs;
  auto items = HarvestItems(e, det, &jobs);
  const Item& it = items.front();

  model::AdtdModel::MetadataEncoding fp32_enc =
      det.model().ForwardMetadata(*it.batch_item.meta);
  tensor::ExecContext int8_ctx(Int8CtxOptions());
  model::AdtdModel::MetadataEncoding int8_enc =
      det.model().ForwardMetadata(*it.batch_item.meta, &int8_ctx);
  ASSERT_EQ(fp32_enc.layer_latents.size(), int8_enc.layer_latents.size());
  for (size_t l = 0; l < fp32_enc.layer_latents.size(); ++l) {
    EXPECT_TRUE(BytesEqual(fp32_enc.layer_latents[l],
                           int8_enc.layer_latents[l]))
        << "layer " << l;
  }
  EXPECT_TRUE(BytesEqual(fp32_enc.anchor_states, int8_enc.anchor_states));
  EXPECT_TRUE(BytesEqual(fp32_enc.logits, int8_enc.logits));
}

TEST(BatchingDiffTest, Int8ExecutorByteIdenticalToInt8Sequential) {
  // End to end via PipelineOptions::p2_dtype: the pipelined executor in
  // int8 mode must reproduce direct int8 sequential detection bit for bit,
  // and actually diverge from the fp32 run somewhere (the flag reached the
  // kernels).
  Env e = Env::Make(6, /*prepack=*/true);
  TasteDetector det(e.model.get(), e.tokenizer.get(), {.cache_shards = 2});
  pipeline::PipelineOptions popt;
  popt.infer_threads = 3;
  popt.p2_dtype = tensor::P2Dtype::kInt8;
  popt.scheduling.enabled = true;
  popt.scheduling.max_items = 8;
  popt.scheduling.max_inflight_batches = 1;
  pipeline::PipelineExecutor exec(&det, e.db.get(), popt);
  auto got = exec.Run(e.table_names);
  ASSERT_TRUE(got.ok());

  auto conn = e.db->Connect();
  bool any_prob_diff_from_fp32 = false;
  for (size_t i = 0; i < e.table_names.size(); ++i) {
    tensor::ExecContext int8_ctx(Int8CtxOptions());
    auto want = det.DetectTable(conn.get(), e.table_names[i], &int8_ctx);
    auto fp32 = det.DetectTable(conn.get(), e.table_names[i]);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(fp32.ok());
    ASSERT_EQ(want->columns.size(), (*got)[i].columns.size());
    for (size_t c = 0; c < want->columns.size(); ++c) {
      const auto& w = want->columns[c];
      const auto& g = (*got)[i].columns[c];
      EXPECT_EQ(w.admitted_types, g.admitted_types);
      ASSERT_EQ(w.probabilities.size(), g.probabilities.size());
      for (size_t p = 0; p < w.probabilities.size(); ++p) {
        EXPECT_EQ(w.probabilities[p], g.probabilities[p])
            << e.table_names[i] << " col " << c << " prob " << p;
        if (w.probabilities[p] != fp32->columns[c].probabilities[p]) {
          any_prob_diff_from_fp32 = true;
        }
      }
    }
  }
  EXPECT_TRUE(any_prob_diff_from_fp32)
      << "int8 executor run matched fp32 bytes everywhere — flag unused?";
}

}  // namespace
}  // namespace taste::core
