// Tests for nn modules: parameter registration, layer shapes and semantics,
// attention masking, cross-attention, checkpoint round-trips, and
// end-to-end trainability of a tiny transformer.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <vector>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/serialize.h"
#include "nn/transformer.h"
#include "tensor/optimizer.h"
#include "tensor/ops.h"

namespace taste::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(ModuleTest, NamedParametersAreHierarchical) {
  Rng rng(1);
  MlpClassifier clf(4, 8, 3, rng);
  auto named = clf.NamedParameters();
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].first, "hidden.weight");
  EXPECT_EQ(named[1].first, "hidden.bias");
  EXPECT_EQ(named[2].first, "out.weight");
  EXPECT_EQ(named[3].first, "out.bias");
}

TEST(ModuleTest, ParameterCount) {
  Rng rng(2);
  Linear lin(10, 5, rng);
  EXPECT_EQ(lin.ParameterCount(), 10 * 5 + 5);
}

TEST(ModuleTest, SetTrainingPropagates) {
  Rng rng(3);
  EncoderConfig cfg;
  TransformerEncoder enc(cfg, rng);
  EXPECT_FALSE(enc.training());
  enc.SetTraining(true);
  EXPECT_TRUE(enc.block(0).training());
  enc.SetTraining(false);
  EXPECT_FALSE(enc.block(0).training());
}

TEST(LinearTest, ShapeAndBias) {
  Rng rng(4);
  Linear lin(3, 2, rng);
  Tensor x = Tensor::Zeros({5, 3});
  Tensor y = lin.Forward(x);
  ASSERT_EQ(y.shape(), (Shape{5, 2}));
  // Zero input -> bias only (bias initialized to zero).
  for (int i = 0; i < 10; ++i) EXPECT_EQ(y.data()[i], 0.0f);
}

TEST(EmbeddingTest, LookupShape) {
  Rng rng(5);
  Embedding emb(10, 4, rng);
  Tensor e = emb.Forward({0, 9, 5});
  ASSERT_EQ(e.shape(), (Shape{3, 4}));
  // Same id -> same row.
  Tensor e2 = emb.Forward({9, 9});
  for (int j = 0; j < 4; ++j) EXPECT_EQ(e2.data()[j], e2.data()[4 + j]);
}

TEST(LayerNormModuleTest, OutputNormalized) {
  LayerNorm ln(8);
  Rng rng(6);
  Tensor x = Tensor::Randn({2, 8}, rng, 5.0f);
  Tensor y = ln.Forward(x);
  for (int r = 0; r < 2; ++r) {
    float mean = 0;
    for (int j = 0; j < 8; ++j) mean += y.data()[r * 8 + j];
    EXPECT_NEAR(mean / 8, 0.0f, 1e-4f);
  }
}

TEST(MlpClassifierTest, LogitsShape) {
  Rng rng(7);
  MlpClassifier clf(6, 16, 5, rng);
  Tensor x = Tensor::Randn({3, 6}, rng);
  Tensor logits = clf.Forward(x);
  ASSERT_EQ(logits.shape(), (Shape{3, 5}));
  EXPECT_EQ(clf.num_labels(), 5);
}

TEST(AttentionTest, SelfAttentionShape) {
  Rng rng(8);
  MultiHeadAttention mha(16, 4, rng);
  Tensor x = Tensor::Randn({7, 16}, rng);
  Tensor y = mha.Forward(x, x);
  ASSERT_EQ(y.shape(), (Shape{7, 16}));
}

TEST(AttentionTest, CrossAttentionShapeUsesQueryLength) {
  Rng rng(9);
  MultiHeadAttention mha(16, 2, rng);
  Tensor q = Tensor::Randn({3, 16}, rng);
  Tensor kv = Tensor::Randn({11, 16}, rng);
  Tensor y = mha.Forward(q, kv);
  ASSERT_EQ(y.shape(), (Shape{3, 16}));
}

TEST(AttentionTest, MaskBlocksInformationFlow) {
  // With position 1 masked out for all queries, changing kv row 1 must not
  // change the output.
  Rng rng(10);
  MultiHeadAttention mha(8, 2, rng);
  Tensor q = Tensor::Randn({2, 8}, rng);
  Tensor kv = Tensor::Randn({3, 8}, rng);
  Tensor mask = Tensor::Zeros({2, 3});
  mask.data()[1] = -1e9f;          // q0 -> kv1 blocked
  mask.data()[3 + 1] = -1e9f;      // q1 -> kv1 blocked
  Tensor y1 = mha.Forward(q, kv, &mask);
  for (int j = 0; j < 8; ++j) kv.data()[8 + j] += 100.0f;  // perturb kv row 1
  Tensor y2 = mha.Forward(q, kv, &mask);
  for (int i = 0; i < 16; ++i) EXPECT_NEAR(y1.data()[i], y2.data()[i], 1e-4f);
}

TEST(AttentionTest, UnmaskedPositionDoesInfluence) {
  Rng rng(11);
  MultiHeadAttention mha(8, 2, rng);
  Tensor q = Tensor::Randn({2, 8}, rng);
  Tensor kv = Tensor::Randn({3, 8}, rng);
  Tensor y1 = mha.Forward(q, kv);
  for (int j = 0; j < 8; ++j) kv.data()[8 + j] += 1.0f;
  Tensor y2 = mha.Forward(q, kv);
  float diff = 0;
  for (int i = 0; i < 16; ++i) diff += std::abs(y1.data()[i] - y2.data()[i]);
  EXPECT_GT(diff, 1e-4f);
}

TEST(TransformerBlockTest, ForwardShapePreserved) {
  Rng rng(12);
  TransformerBlock block(16, 4, 32, 0.0f, rng);
  Tensor x = Tensor::Randn({5, 16}, rng);
  Tensor y = block.Forward(x);
  ASSERT_EQ(y.shape(), (Shape{5, 16}));
}

TEST(TransformerBlockTest, CrossAttentionResidualOnQuery) {
  // Output length follows the query stream even when kv is longer, because
  // the residual connection is on the query stream (ADTD content tower).
  Rng rng(13);
  TransformerBlock block(16, 4, 32, 0.0f, rng);
  Tensor q = Tensor::Randn({4, 16}, rng);
  Tensor kv = Tensor::Randn({9, 16}, rng);
  Tensor y = block.Forward(q, kv, nullptr);
  ASSERT_EQ(y.shape(), (Shape{4, 16}));
}

TEST(TransformerEncoderTest, StackForward) {
  Rng rng(14);
  EncoderConfig cfg{.num_layers = 3, .num_heads = 2, .intermediate = 32,
                    .hidden = 16};
  TransformerEncoder enc(cfg, rng);
  EXPECT_EQ(enc.num_layers(), 3);
  Tensor x = Tensor::Randn({6, 16}, rng);
  Tensor y = enc.Forward(x);
  ASSERT_EQ(y.shape(), (Shape{6, 16}));
}

TEST(TransformerEncoderTest, PaperConfigParameterScale) {
  // The paper reports ~14.5M parameters for encoder+embeddings; the encoder
  // stack alone (L=4, H=312, I=1200) is ~4.9M. Verify the right order.
  Rng rng(15);
  TransformerEncoder enc(EncoderConfig::Paper(), rng);
  int64_t n = enc.ParameterCount();
  EXPECT_GT(n, 4'000'000);
  EXPECT_LT(n, 6'000'000);
}

TEST(TransformerTest, TinyModelLearnsTokenCopyTask) {
  // Sanity: a 1-layer transformer + classifier learns to map token id
  // parity to a label, proving gradients flow end to end.
  Rng rng(16);
  const int64_t vocab = 8, hidden = 16;
  Embedding emb(vocab, hidden, rng);
  TransformerBlock block(hidden, 2, 32, 0.0f, rng);
  Linear head(hidden, 2, rng);
  std::vector<tensor::Tensor> params;
  for (auto& p : emb.Parameters()) params.push_back(p);
  for (auto& p : block.Parameters()) params.push_back(p);
  for (auto& p : head.Parameters()) params.push_back(p);
  tensor::Adam opt(params, {.lr = 5e-3f});
  Rng data_rng(17);
  float last_loss = 1e9f;
  for (int step = 0; step < 300; ++step) {
    std::vector<int> ids(6);
    std::vector<int> labels(6);
    for (int i = 0; i < 6; ++i) {
      ids[i] = static_cast<int>(data_rng.NextBelow(vocab));
      labels[i] = ids[i] % 2;
    }
    Tensor h = block.Forward(emb.Forward(ids));
    Tensor logits = head.Forward(h);
    Tensor loss = tensor::CrossEntropyWithLogits(logits, labels);
    loss.Backward();
    opt.Step();
    last_loss = loss.item();
  }
  EXPECT_LT(last_loss, 0.1f);
}

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("taste_ckpt_" + std::to_string(::getpid()) + ".bin");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(SerializeTest, RoundTripRestoresValues) {
  Rng rng(18);
  MlpClassifier a(4, 8, 3, rng);
  ASSERT_TRUE(SaveCheckpoint(a, path_.string()).ok());

  Rng rng2(999);
  MlpClassifier b(4, 8, 3, rng2);
  // Different init -> different outputs before load.
  Tensor x = Tensor::Randn({2, 4}, rng);
  Tensor ya = a.Forward(x);
  ASSERT_TRUE(LoadCheckpoint(&b, path_.string()).ok());
  Tensor yb = b.Forward(x);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(ya.data()[i], yb.data()[i]);
}

TEST_F(SerializeTest, ShapeMismatchRejected) {
  Rng rng(19);
  MlpClassifier a(4, 8, 3, rng);
  ASSERT_TRUE(SaveCheckpoint(a, path_.string()).ok());
  MlpClassifier wrong(4, 16, 3, rng);
  Status st = LoadCheckpoint(&wrong, path_.string());
  EXPECT_FALSE(st.ok());
}

TEST_F(SerializeTest, MissingFileIsIOError) {
  Rng rng(20);
  MlpClassifier a(4, 8, 3, rng);
  Status st = LoadCheckpoint(&a, "/nonexistent/dir/ckpt.bin");
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST_F(SerializeTest, CorruptMagicRejected) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  std::fputs("NOTACKPT-GARBAGE", f);
  std::fclose(f);
  Rng rng(21);
  MlpClassifier a(4, 8, 3, rng);
  Status st = LoadCheckpoint(&a, path_.string());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(SerializeTest, ReadCheckpointExposesTensors) {
  Rng rng(22);
  Linear lin(3, 2, rng);
  ASSERT_TRUE(SaveCheckpoint(lin, path_.string()).ok());
  auto res = ReadCheckpoint(path_.string());
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->size(), 2u);
  EXPECT_EQ(res->at("weight").shape(), (Shape{3, 2}));
  EXPECT_EQ(res->at("bias").shape(), (Shape{2}));
}

TEST_F(SerializeTest, NoTempFileLeftBehind) {
  Rng rng(25);
  Linear lin(3, 2, rng);
  ASSERT_TRUE(SaveCheckpoint(lin, path_.string()).ok());
  EXPECT_FALSE(std::filesystem::exists(path_.string() + ".tmp"));
}

TEST_F(SerializeTest, EverySingleByteCorruptionIsRejected) {
  Rng rng(26);
  Linear lin(3, 2, rng);
  ASSERT_TRUE(SaveCheckpoint(lin, path_.string()).ok());
  std::vector<unsigned char> good;
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    int c;
    while ((c = std::fgetc(f)) != EOF) good.push_back(static_cast<unsigned char>(c));
    std::fclose(f);
  }
  ASSERT_GT(good.size(), 16u);
  // Flip every byte of the file in turn. The CRC (or the magic check, for
  // the first 8 bytes) must catch each one: a corrupt length prefix must
  // never drive a bogus load or a huge allocation.
  for (size_t i = 0; i < good.size(); ++i) {
    std::vector<unsigned char> bad = good;
    bad[i] ^= 0xFF;
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bad.data(), 1, bad.size(), f), bad.size());
    std::fclose(f);
    EXPECT_FALSE(ReadCheckpoint(path_.string()).ok()) << "flipped byte " << i;
  }
  // Every truncation must be caught too (the trailing CRC goes missing).
  for (size_t len : {good.size() - 1, good.size() / 2, size_t{9}, size_t{0}}) {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(good.data(), 1, len, f), len);
    std::fclose(f);
    EXPECT_FALSE(ReadCheckpoint(path_.string()).ok())
        << "truncated to " << len;
  }
  // Appended garbage shifts the CRC trailer and must be caught as well.
  {
    std::vector<unsigned char> bad = good;
    bad.push_back(0x5A);
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bad.data(), 1, bad.size(), f), bad.size());
    std::fclose(f);
    EXPECT_FALSE(ReadCheckpoint(path_.string()).ok()) << "trailing garbage";
  }
  // And the pristine bytes still load, so the sweep tested the real format.
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(good.data(), 1, good.size(), f), good.size());
  std::fclose(f);
  EXPECT_TRUE(ReadCheckpoint(path_.string()).ok());
}

TEST_F(SerializeTest, LegacyV1CheckpointStillLoads) {
  Rng rng(27);
  Linear a(3, 2, rng);
  ASSERT_TRUE(SaveCheckpoint(a, path_.string()).ok());
  auto tensors = ReadCheckpoint(path_.string());
  ASSERT_TRUE(tensors.ok());
  // Re-serialize the same parameters in the v1 layout: magic "TSTCKPT1",
  // then the payload with no version field and no CRC trailer.
  std::vector<unsigned char> v1;
  auto put = [&v1](const void* p, size_t n) {
    const unsigned char* b = static_cast<const unsigned char*>(p);
    v1.insert(v1.end(), b, b + n);
  };
  put("TSTCKPT1", 8);
  const uint64_t count = tensors->size();
  put(&count, sizeof(count));
  for (const auto& [name, t] : *tensors) {
    const uint32_t name_len = static_cast<uint32_t>(name.size());
    put(&name_len, sizeof(name_len));
    put(name.data(), name.size());
    const uint32_t rank = static_cast<uint32_t>(t.shape().size());
    put(&rank, sizeof(rank));
    for (int64_t d : t.shape()) {
      const uint64_t du = static_cast<uint64_t>(d);
      put(&du, sizeof(du));
    }
    put(t.data(), sizeof(float) * static_cast<size_t>(t.numel()));
  }
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(v1.data(), 1, v1.size(), f), v1.size());
  std::fclose(f);

  Rng rng2(999);
  Linear b(3, 2, rng2);
  ASSERT_TRUE(LoadCheckpoint(&b, path_.string()).ok());
  Tensor x = Tensor::Randn({2, 3}, rng);
  Tensor ya = a.Forward(x), yb = b.Forward(x);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ya.data()[i], yb.data()[i]);
}

TEST(CopyParametersTest, TransplantsWeights) {
  Rng r1(23), r2(24);
  Linear a(4, 4, r1), b(4, 4, r2);
  ASSERT_TRUE(CopyParameters(a, &b).ok());
  Tensor x = Tensor::Randn({1, 4}, r1);
  Tensor ya = a.Forward(x), yb = b.Forward(x);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ya.data()[i], yb.data()[i]);
}

TEST(CopyParametersTest, MismatchedArchitectureRejected) {
  Rng rng(25);
  Linear a(4, 4, rng);
  MlpClassifier b(4, 4, 4, rng);
  EXPECT_FALSE(CopyParameters(a, &b).ok());
}

}  // namespace
}  // namespace taste::nn
