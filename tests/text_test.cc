// Tests for the WordPiece tokenizer stack: pre-tokenization, vocabulary,
// trainer merges, encoder semantics, and round-trips.

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "text/vocab.h"
#include "text/wordpiece.h"

namespace taste::text {
namespace {

TEST(PreTokenizeTest, SplitsSnakeCaseColumnNames) {
  auto t = PreTokenize("customer_email_address");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "customer");
  EXPECT_EQ(t[1], "email");
  EXPECT_EQ(t[2], "address");
}

TEST(PreTokenizeTest, LowercasesAndSplitsKebabAndDots) {
  auto t = PreTokenize("User-ID.Main");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "user");
  EXPECT_EQ(t[1], "id");
  EXPECT_EQ(t[2], "main");
}

TEST(PreTokenizeTest, PunctuationIsolated) {
  auto t = PreTokenize("a@b,c");
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t[1], "@");
  EXPECT_EQ(t[3], ",");
}

TEST(PreTokenizeTest, DigitsStayGrouped) {
  auto t = PreTokenize("call 555 0199");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1], "555");
}

TEST(PreTokenizeTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(PreTokenize("").empty());
  EXPECT_TRUE(PreTokenize("  \t\n").empty());
}

TEST(VocabTest, SpecialTokensFixedIds) {
  Vocab v;
  EXPECT_EQ(v.Id("[PAD]"), Vocab::kPadId);
  EXPECT_EQ(v.Id("[UNK]"), Vocab::kUnkId);
  EXPECT_EQ(v.Id("[CLS]"), Vocab::kClsId);
  EXPECT_EQ(v.Id("[SEP]"), Vocab::kSepId);
  EXPECT_EQ(v.Id("[MASK]"), Vocab::kMaskId);
  EXPECT_EQ(v.size(), Vocab::kNumSpecialTokens);
}

TEST(VocabTest, AddTokenIdempotent) {
  Vocab v;
  int a = v.AddToken("email");
  int b = v.AddToken("email");
  EXPECT_EQ(a, b);
  EXPECT_EQ(v.Token(a), "email");
  EXPECT_TRUE(v.Contains("email"));
}

TEST(VocabTest, UnknownMapsToUnk) {
  Vocab v;
  EXPECT_EQ(v.Id("never-seen"), Vocab::kUnkId);
}

TEST(VocabTest, SaveLoadRoundTrip) {
  Vocab v;
  v.AddToken("alpha");
  v.AddToken("##beta");
  auto path = std::filesystem::temp_directory_path() / "taste_vocab_test.txt";
  ASSERT_TRUE(v.Save(path.string()).ok());
  auto loaded = Vocab::Load(path.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), v.size());
  EXPECT_EQ(loaded->Id("alpha"), v.Id("alpha"));
  EXPECT_EQ(loaded->Id("##beta"), v.Id("##beta"));
  std::filesystem::remove(path);
}

TEST(VocabTest, LoadRejectsMissingSpecials) {
  auto path = std::filesystem::temp_directory_path() / "taste_vocab_bad.txt";
  {
    std::ofstream out(path);
    out << "foo\nbar\n";
  }
  EXPECT_FALSE(Vocab::Load(path.string()).ok());
  std::filesystem::remove(path);
}

TEST(TrainerTest, LearnsFrequentWordsAsSinglePieces) {
  WordPieceTrainer trainer({.vocab_size = 200, .min_pair_frequency = 2});
  for (int i = 0; i < 50; ++i) {
    trainer.AddDocument("customer email address");
    trainer.AddDocument("customer phone number");
  }
  Vocab v = trainer.Train();
  EXPECT_TRUE(v.Contains("customer"));
  EXPECT_TRUE(v.Contains("email"));
  EXPECT_TRUE(v.Contains("phone"));
}

TEST(TrainerTest, RespectsVocabSizeBudget) {
  WordPieceTrainer trainer({.vocab_size = 40, .min_pair_frequency = 1});
  trainer.AddDocument("aaa bbb ccc ddd eee fff ggg hhh iii jjj");
  trainer.AddDocument("abcdefgh ijklmnop qrstuvwx");
  Vocab v = trainer.Train();
  EXPECT_LE(v.size(), 40);
}

TEST(TrainerTest, CharactersAlwaysCovered) {
  WordPieceTrainer trainer({.vocab_size = 100});
  trainer.AddDocument("xyz");
  Vocab v = trainer.Train();
  EXPECT_TRUE(v.Contains("x"));
  EXPECT_TRUE(v.Contains("##y"));
  EXPECT_TRUE(v.Contains("##z"));
}

WordPieceTokenizer MakeTokenizer() {
  WordPieceTrainer trainer({.vocab_size = 400, .min_pair_frequency = 2});
  for (int i = 0; i < 30; ++i) {
    trainer.AddDocument("customer email address city country name");
    trainer.AddDocument("phone number credit card user id date");
    trainer.AddDocument("the table stores customer records with email");
  }
  return WordPieceTokenizer(trainer.Train());
}

TEST(TokenizerTest, EncodeKnownWordIsSingleToken) {
  auto tok = MakeTokenizer();
  auto ids = tok.Encode("email");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(tok.vocab().Token(ids[0]), "email");
}

TEST(TokenizerTest, EncodeSplitsUnseenCompound) {
  auto tok = MakeTokenizer();
  // "customeremail" unseen as a whole; must decompose into >= 2 pieces,
  // not [UNK], because every continuation character occurs mid-word in the
  // training corpus.
  auto ids = tok.Encode("customeremail");
  EXPECT_GE(ids.size(), 2u);
  for (int id : ids) EXPECT_NE(id, Vocab::kUnkId);
}

TEST(TokenizerTest, UnknownCharacterBecomesUnk) {
  auto tok = MakeTokenizer();
  auto ids = tok.Encode("\x7f");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], Vocab::kUnkId);
}

TEST(TokenizerTest, EncodeFixedPadsAndTruncates) {
  auto tok = MakeTokenizer();
  auto padded = tok.EncodeFixed("email", 4);
  ASSERT_EQ(padded.size(), 4u);
  EXPECT_EQ(padded[1], Vocab::kPadId);
  EXPECT_EQ(padded[3], Vocab::kPadId);
  auto truncated =
      tok.EncodeFixed("customer email address city country name", 3);
  EXPECT_EQ(truncated.size(), 3u);
}

TEST(TokenizerTest, DecodeJoinsContinuations) {
  auto tok = MakeTokenizer();
  auto ids = tok.Encode("customer email");
  EXPECT_EQ(tok.Decode(ids), "customer email");
}

TEST(TokenizerTest, SnakeCaseColumnNameRoundTrip) {
  auto tok = MakeTokenizer();
  auto ids = tok.Encode("customer_email");
  EXPECT_EQ(tok.Decode(ids), "customer email");
}

TEST(TokenizerTest, DeterministicEncoding) {
  auto tok = MakeTokenizer();
  EXPECT_EQ(tok.Encode("credit card number"), tok.Encode("credit card number"));
}

}  // namespace
}  // namespace taste::text
