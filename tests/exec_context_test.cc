// Tests for the inference ExecContext: BufferPool recycling semantics,
// thread-local binding rules, structural no-grad enforcement, profiling
// hooks, and the acceptance-level guarantee that arena-backed (pooled)
// forwards are bit-identical to heap-backed ones.

#include "tensor/exec_context.h"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "clouddb/database.h"
#include "common/thread_pool.h"
#include "data/table_generator.h"
#include "model/adtd.h"
#include "model/input_encoding.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace taste::tensor {
namespace {

// ---- BufferPool -------------------------------------------------------------

TEST(BufferPoolTest, ReusesExactSizeAndZeroFills) {
  BufferPool pool;
  std::vector<float> buf = pool.Acquire(16);
  ASSERT_EQ(buf.size(), 16u);
  for (float v : buf) EXPECT_EQ(v, 0.0f);
  float* first_data = buf.data();
  for (auto& v : buf) v = 7.0f;  // dirty it
  pool.Release(std::move(buf));

  std::vector<float> again = pool.Acquire(16);
  ASSERT_EQ(again.size(), 16u);
  EXPECT_EQ(again.data(), first_data);  // same storage came back
  for (float v : again) EXPECT_EQ(v, 0.0f);  // ... but scrubbed

  BufferPool::Stats st = pool.stats();
  EXPECT_EQ(st.acquires, 2);
  EXPECT_EQ(st.reuses, 1);
  EXPECT_EQ(st.releases, 1);
}

TEST(BufferPoolTest, DifferentSizesDoNotAlias) {
  BufferPool pool;
  pool.Release(pool.Acquire(8));
  std::vector<float> other = pool.Acquire(9);
  EXPECT_EQ(other.size(), 9u);
  EXPECT_EQ(pool.stats().reuses, 0);
}

TEST(BufferPoolTest, ByteCapDropsReleases) {
  BufferPool pool(/*max_bytes=*/16);  // room for 4 floats
  std::vector<float> one = pool.Acquire(4);
  std::vector<float> two = pool.Acquire(4);
  pool.Release(std::move(one));  // fits exactly
  pool.Release(std::move(two));  // past the cap: dropped, not counted
  BufferPool::Stats st = pool.stats();
  EXPECT_EQ(st.releases, 1);
  EXPECT_EQ(st.bytes_pooled, 16);
}

TEST(BufferPoolTest, ConcurrentAcquireReleaseIsSafe) {
  // The cross-thread contract behind cached latents: tensors created on an
  // infer worker can drop their buffers from any thread. Run under
  // TASTE_SANITIZE=thread this is the pool's race check.
  BufferPool pool;
  ThreadPool workers(4);
  std::vector<std::future<void>> futs;
  for (int t = 0; t < 8; ++t) {
    futs.push_back(workers.Submit([&pool] {
      for (int i = 0; i < 200; ++i) pool.Release(pool.Acquire(64));
    }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(pool.stats().acquires, 1600);
}

// ---- binding ----------------------------------------------------------------

TEST(ExecContextTest, ScopedBindingNestsAndNullIsNoOp) {
  EXPECT_EQ(ExecContext::Current(), nullptr);
  ExecContext outer;
  {
    ScopedExecContext bind_outer(&outer);
    EXPECT_EQ(ExecContext::Current(), &outer);
    {
      // Null binding must NOT clobber the outer binding: every Forward(...,
      // ctx = nullptr) in the nn/model layers relies on this.
      ScopedExecContext noop(nullptr);
      EXPECT_EQ(ExecContext::Current(), &outer);
    }
    EXPECT_EQ(ExecContext::Current(), &outer);
    ExecContext inner;
    {
      ScopedExecContext bind_inner(&inner);
      EXPECT_EQ(ExecContext::Current(), &inner);
    }
    EXPECT_EQ(ExecContext::Current(), &outer);
  }
  EXPECT_EQ(ExecContext::Current(), nullptr);
}

// ---- structural no-grad -----------------------------------------------------

TEST(ExecContextTest, NoGradContextSuppressesTape) {
  Rng rng(3);
  Tensor a = Tensor::Randn({4, 6}, rng, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({6, 5}, rng, 1.0f, /*requires_grad=*/true);

  ExecContext::Options opt;
  opt.no_grad = true;
  ExecContext ctx(opt);
  const int64_t edges_before = GradEdgesRecorded();
  {
    ScopedExecContext bind(&ctx);
    EXPECT_FALSE(GradEnabled());  // even without a NoGradGuard
    Tensor y = MatMul(a, b);
    EXPECT_FALSE(y.requires_grad());
  }
  EXPECT_EQ(GradEdgesRecorded(), edges_before);
  // Outside the context the tape works again.
  EXPECT_TRUE(GradEnabled());
  Tensor y = MatMul(a, b);
  EXPECT_TRUE(y.requires_grad());
  EXPECT_GT(GradEdgesRecorded(), edges_before);
}

// ---- pooled tensors ---------------------------------------------------------

TEST(ExecContextTest, PooledTensorMayOutliveContext) {
  std::shared_ptr<BufferPool> pool;
  Tensor survivor;
  {
    ExecContext ctx;
    pool = ctx.buffer_pool();
    ASSERT_NE(pool, nullptr);
    Rng rng(5);
    Tensor a = Tensor::Randn({3, 3}, rng);
    Tensor b = Tensor::Randn({3, 3}, rng);
    ScopedExecContext bind(&ctx);
    survivor = Add(a, b);  // op output draws from the context's pool
    EXPECT_GT(pool->stats().acquires, 0);
  }
  // Context is gone; the tensor (co-owning the pool) is still valid.
  EXPECT_EQ(survivor.numel(), 9);
  const int64_t releases_before = pool->stats().releases;
  survivor = Tensor();  // dropping the last reference returns the buffer
  EXPECT_EQ(pool->stats().releases, releases_before + 1);
}

TEST(ExecContextTest, SecondForwardReusesActivationBuffers) {
  Rng rng(6);
  Tensor a = Tensor::Randn({8, 16}, rng);
  Tensor b = Tensor::Randn({16, 8}, rng);
  ExecContext ctx;
  {
    ScopedExecContext bind(&ctx);
    { Tensor y = Gelu(MatMul(a, b)); }  // buffers go back to the pool here
    BufferPool::Stats first = ctx.stats().pool;
    EXPECT_EQ(first.reuses, 0);
    { Tensor y = Gelu(MatMul(a, b)); }
    BufferPool::Stats second = ctx.stats().pool;
    EXPECT_EQ(second.reuses, first.acquires);  // every buffer recycled
  }
}

// ---- profiling --------------------------------------------------------------

TEST(ExecContextTest, ProfilingCountsKernelCalls) {
  Rng rng(7);
  Tensor a = Tensor::Randn({4, 8}, rng);
  Tensor b = Tensor::Randn({8, 4}, rng);
  ExecContext::Options opt;
  opt.profile = true;
  ExecContext ctx(opt);
  {
    ScopedExecContext bind(&ctx);
    Tensor y = Softmax(MatMul(a, b));
    Tensor g = Gelu(y);
  }
  ExecStats st = ctx.stats();
  EXPECT_EQ(st.gemm.calls, 1);
  EXPECT_EQ(st.softmax.calls, 1);
  EXPECT_EQ(st.gelu.calls, 1);
  EXPECT_GE(st.gemm.ms, 0.0);
  ctx.ResetStats();
  EXPECT_EQ(ctx.stats().gemm.calls, 0);
}

TEST(ExecContextTest, ProfilingOffRecordsNothing) {
  Rng rng(8);
  Tensor a = Tensor::Randn({4, 8}, rng);
  Tensor b = Tensor::Randn({8, 4}, rng);
  ExecContext ctx;  // default: profile = false
  {
    ScopedExecContext bind(&ctx);
    Tensor y = MatMul(a, b);
  }
  EXPECT_EQ(ctx.stats().gemm.calls, 0);
}

// ---- arena vs heap parity on the real model ---------------------------------

TEST(ExecContextTest, ArenaBackedAdtdForwardIsBitIdenticalToHeap) {
  data::DatasetProfile profile = data::DatasetProfile::WikiLike(/*tables=*/4);
  data::Dataset ds = data::GenerateDataset(profile);
  text::WordPieceTrainer trainer({.vocab_size = 400, .min_pair_frequency = 2});
  for (const auto& doc : data::BuildCorpusDocuments(ds)) {
    trainer.AddDocument(doc);
  }
  text::WordPieceTokenizer tok(trainer.Train());

  clouddb::CostModel cost;
  cost.time_scale = 0.0;
  clouddb::SimulatedDatabase db(cost);
  ASSERT_TRUE(db.IngestDataset(ds, /*with_histograms=*/true).ok());
  auto conn = db.Connect();
  auto meta = conn->GetTableMetadata(ds.tables[0].name);
  ASSERT_TRUE(meta.ok());

  model::AdtdConfig cfg = model::AdtdConfig::Tiny(
      tok.vocab().size(), data::SemanticTypeRegistry::Default().size());
  Rng rng(99);
  model::AdtdModel model(cfg, rng);
  model::InputEncoder encoder(&tok, cfg.input);
  model::EncodedMetadata em = encoder.EncodeMetadata(*meta);

  NoGradGuard ng;
  model::AdtdModel::MetadataEncoding heap = model.ForwardMetadata(em);

  ExecContext::Options opt;
  opt.no_grad = true;
  ExecContext ctx(opt);
  model::AdtdModel::MetadataEncoding pooled = model.ForwardMetadata(em, &ctx);
  // Run again so the second pass consumes recycled (previously dirty,
  // re-zeroed) buffers — the case that would expose a scrubbing bug.
  model::AdtdModel::MetadataEncoding recycled = model.ForwardMetadata(em, &ctx);
  EXPECT_GT(ctx.stats().pool.reuses, 0);

  ASSERT_EQ(heap.logits.numel(), pooled.logits.numel());
  for (int64_t i = 0; i < heap.logits.numel(); ++i) {
    ASSERT_EQ(heap.logits.data()[i], pooled.logits.data()[i]) << "at " << i;
    ASSERT_EQ(heap.logits.data()[i], recycled.logits.data()[i]) << "at " << i;
  }
  ASSERT_EQ(heap.anchor_states.numel(), pooled.anchor_states.numel());
  for (int64_t i = 0; i < heap.anchor_states.numel(); ++i) {
    ASSERT_EQ(heap.anchor_states.data()[i], pooled.anchor_states.data()[i]);
  }
}

}  // namespace
}  // namespace taste::tensor
