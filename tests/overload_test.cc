// Real-time deadline behaviour of the serving path (DESIGN.md §8): budgets
// that expire mid-run, degradation to the metadata-only path once P1 has
// classified, and the headline overload acceptance scenario — offered load
// several times the infer capacity under a 100 ms budget, with every table
// reaching exactly one terminal state and admitted latency staying near the
// budget. These tests sleep on the simulated-I/O clock (time_scale = 1), so
// they carry the `slow` label and stay out of the sanitizer jobs, whose
// instrumentation skews wall-clock timing.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/taste_detector.h"
#include "data/table_generator.h"
#include "obs/metrics.h"
#include "pipeline/scheduler.h"

namespace taste {
namespace {

struct Env {
  data::Dataset dataset;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer;
  std::unique_ptr<model::AdtdModel> model;
  std::vector<std::string> table_names;

  static Env Make(int tables) {
    Env e;
    e.dataset = data::GenerateDataset(data::DatasetProfile::WikiLike(tables));
    text::WordPieceTrainer trainer({.vocab_size = 400});
    for (const auto& d : data::BuildCorpusDocuments(e.dataset)) {
      trainer.AddDocument(d);
    }
    e.tokenizer = std::make_unique<text::WordPieceTokenizer>(trainer.Train());
    model::AdtdConfig cfg = model::AdtdConfig::Tiny(
        e.tokenizer->vocab().size(),
        data::SemanticTypeRegistry::Default().size());
    Rng rng(21);
    e.model = std::make_unique<model::AdtdModel>(cfg, rng);
    for (const auto& t : e.dataset.tables) e.table_names.push_back(t.name);
    return e;
  }

  /// A real-sleeping database with the given per-operation costs.
  std::unique_ptr<clouddb::SimulatedDatabase> MakeDb(
      clouddb::CostModel cost) const {
    auto db = std::make_unique<clouddb::SimulatedDatabase>(cost);
    TASTE_CHECK(db->IngestDataset(dataset).ok());
    return db;
  }
};

/// Asserts the outcome/status pairing invariant every terminal table obeys.
void CheckTerminalConsistency(const pipeline::TableRunResult& t) {
  switch (t.outcome) {
    case pipeline::TableOutcome::kComplete:
      EXPECT_TRUE(t.status.ok());
      EXPECT_EQ(t.result.degraded_columns, 0);
      break;
    case pipeline::TableOutcome::kDegraded:
      EXPECT_TRUE(t.status.ok());
      EXPECT_GT(t.result.degraded_columns, 0);
      break;
    case pipeline::TableOutcome::kShed:
      EXPECT_EQ(t.status.code(), StatusCode::kUnavailable);
      break;
    case pipeline::TableOutcome::kExpired:
      EXPECT_TRUE(t.status.code() == StatusCode::kDeadlineExceeded ||
                  t.status.code() == StatusCode::kCancelled)
          << t.status.ToString();
      break;
    case pipeline::TableOutcome::kFailed:
      EXPECT_FALSE(t.status.ok());
      break;
  }
}

TEST(RealTimeDeadlineTest, ExpiresMidP1AndParks) {
  Env env = Env::Make(4);
  // The metadata query alone costs 400 ms of (real) simulated I/O, far past
  // the 60 ms budget: the wait is capped at the remaining budget and the
  // table parks without ever finishing P1.
  clouddb::CostModel cost;
  cost.connect_ms = 0.0;
  cost.query_ms = 400.0;
  auto db = env.MakeDb(cost);
  core::TasteDetector detector(env.model.get(), env.tokenizer.get(), {});
  pipeline::PipelineOptions popt;
  popt.deadline_ms = 60.0;
  pipeline::PipelineExecutor exec(&detector, db.get(), popt);
  auto batch = exec.RunBatch({env.table_names[0]});
  ASSERT_EQ(batch.tables.size(), 1u);
  EXPECT_EQ(batch.tables[0].outcome, pipeline::TableOutcome::kExpired);
  EXPECT_EQ(batch.tables[0].status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(exec.resilience_stats().expired_tables, 1);
  // The capped wait means expiry cost ~one budget, not ~one query.
  EXPECT_LT(exec.stats().wall_ms, 400.0);
}

TEST(RealTimeDeadlineTest, DegradesToMetadataOnlyOnceP1Completed) {
  Env env = Env::Make(4);
  // Metadata is free but every scanned cell costs 50 ms: P1 finishes well
  // inside the 1.5 s budget, the P2 content scan cannot. The expired table
  // must fall back to metadata-only predictions, not fail.
  clouddb::CostModel cost;
  cost.connect_ms = 0.0;
  cost.query_ms = 0.0;
  cost.per_metadata_col_ms = 0.0;
  cost.per_cell_ms = 50.0;
  auto db = env.MakeDb(cost);
  core::TasteDetector detector(env.model.get(), env.tokenizer.get(), {});
  pipeline::PipelineOptions popt;
  popt.deadline_ms = 1500.0;
  pipeline::PipelineExecutor exec(&detector, db.get(), popt);
  auto batch = exec.RunBatch({env.table_names[0]});
  ASSERT_EQ(batch.tables.size(), 1u);
  const auto& t = batch.tables[0];
  ASSERT_TRUE(t.status.ok()) << t.status.ToString();
  EXPECT_EQ(t.outcome, pipeline::TableOutcome::kDegraded);
  EXPECT_GT(t.result.degraded_columns, 0);
  int degraded_cols = 0;
  for (const auto& col : t.result.columns) {
    EXPECT_FALSE(col.provenance == core::ResultProvenance::kFailed);
    if (col.provenance == core::ResultProvenance::kDegradedMetadataOnly) {
      EXPECT_FALSE(col.went_to_p2);
      ++degraded_cols;
    }
  }
  EXPECT_EQ(degraded_cols, t.result.degraded_columns);
  EXPECT_EQ(exec.resilience_stats().degraded_tables, 1);
  EXPECT_EQ(exec.resilience_stats().expired_tables, 0);
}

TEST(RealTimeDeadlineTest, OverloadMeetsDeadlineWithTerminalStates) {
  // The acceptance scenario: offered load 4x the admission capacity under a
  // 100 ms budget. Nothing hangs, nothing is lost — every table lands in
  // exactly one terminal state — and the latency of admitted tables stays
  // near the budget because waits are capped and excess load is shed.
  Env env = Env::Make(8);
  clouddb::CostModel cost;  // defaults: real sleeping, modest per-op costs
  cost.per_cell_ms = 2.0;   // content scans are the expensive part
  auto db = env.MakeDb(cost);
  core::TasteOptions topt;
  topt.resilience.enabled = true;  // allow metadata-only degradation
  core::TasteDetector detector(env.model.get(), env.tokenizer.get(), topt);

  const bool metrics_before = obs::MetricsEnabled();
  obs::SetMetricsEnabled(true);
  obs::Histogram* admitted =
      obs::Registry::Global().GetHistogram("taste_admitted_table_ms");
  admitted->Reset();

  pipeline::PipelineOptions popt;
  popt.prep_threads = 2;
  popt.infer_threads = 2;
  popt.deadline_ms = 100.0;
  popt.admission.enabled = true;
  popt.admission.max_inflight_tables = 4;
  popt.admission.max_queued_tables = 8;
  pipeline::PipelineExecutor exec(&detector, db.get(), popt);

  std::vector<std::string> targets;  // 48 tables vs capacity 12: 4x offered
  for (int i = 0; i < 48; ++i) {
    targets.push_back(env.table_names[i % env.table_names.size()]);
  }
  auto batch = exec.RunBatch(targets);
  ASSERT_EQ(batch.tables.size(), targets.size());
  int64_t terminal[5] = {0, 0, 0, 0, 0};
  for (const auto& t : batch.tables) {
    CheckTerminalConsistency(t);
    ++terminal[static_cast<int>(t.outcome)];
  }
  const auto& rz = exec.resilience_stats();
  // The tail past max_inflight + max_queued is shed deterministically.
  EXPECT_EQ(rz.shed_tables, 48 - (4 + 8));
  EXPECT_EQ(terminal[static_cast<int>(pipeline::TableOutcome::kShed)],
            rz.shed_tables);
  EXPECT_LE(exec.stats().max_tables_in_flight, 4);
  // The latency histogram records tables that actually started; under this
  // much overload most queued tables expire before their first dispatch
  // (they never hold a worker at all), so the count is between 1 and the
  // admitted set. Started tables finish near the budget: capped waits keep
  // even expired tables from holding workers past the deadline. The 2.5x
  // slack absorbs scheduler jitter on loaded CI machines without weakening
  // the point — an uncapped scan here would take seconds.
  const auto snap = admitted->snapshot();
  EXPECT_GE(snap.count, 1);
  EXPECT_LE(snap.count, 4 + 8);
  EXPECT_LE(snap.Quantile(0.99), 250.0);
  EXPECT_LT(exec.stats().wall_ms, 2000.0);
  obs::SetMetricsEnabled(metrics_before);
}

}  // namespace
}  // namespace taste
