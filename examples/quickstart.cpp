// Quickstart: train a small TASTE stack on a synthetic table corpus, point
// it at a simulated cloud database, and detect the semantic types of one
// table with the two-phase framework.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/taste_detector.h"
#include "data/table_generator.h"
#include "eval/experiment.h"

using namespace taste;

int main() {
  // 1) A synthetic "tenant" corpus standing in for WikiTable: tables of
  //    customers/orders/products/... with ground-truth semantic types.
  // Matches the benches' standard stack so the trained checkpoint in
  // .taste_model_cache is shared; the first run trains (~minutes on one
  // core), later runs load instantly.
  eval::StackOptions options;
  options.num_tables = 240;
  options.pretrain_epochs = 1;
  options.finetune_epochs = 12;
  options.train_adtd_hist = false;
  options.train_baselines = false;
  std::printf("Training the ADTD model (cached after the first run)...\n");
  auto stack = eval::BuildStack(data::DatasetProfile::WikiLike(), options);
  if (!stack.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 stack.status().ToString().c_str());
    return 1;
  }

  // 2) Stage the held-out test tables in a simulated RDS (5 ms query RTT).
  clouddb::CostModel cost;  // default latencies; realized as real blocking
  auto db = eval::MakeTestDatabase(stack->dataset, stack->dataset.test,
                                   /*with_histograms=*/false, cost);
  if (!db.ok()) {
    std::fprintf(stderr, "db setup failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }

  // 3) Detect semantic types for one table with the two-phase framework.
  core::TasteOptions taste_options;
  taste_options.alpha = 0.1;  // below: irrelevant
  taste_options.beta = 0.9;   // above: admitted from metadata alone
  core::TasteDetector detector(stack->adtd.get(), stack->tokenizer.get(),
                               taste_options);
  auto conn = (*db)->Connect();
  const auto& registry = data::SemanticTypeRegistry::Default();
  const data::TableSpec& table =
      stack->dataset.tables[stack->dataset.test[0]];
  auto result = detector.DetectTable(conn.get(), table.name);
  if (!result.ok()) {
    std::fprintf(stderr, "detection failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nTable: %s\n", result->table_name.c_str());
  std::printf("%-20s %-28s %-28s %s\n", "column", "detected", "ground truth",
              "phase");
  for (const auto& col : result->columns) {
    std::string detected;
    for (int t : col.admitted_types) {
      if (!detected.empty()) detected += ",";
      detected += registry.info(t).name;
    }
    if (detected.empty()) detected = "(none)";
    std::string truth;
    for (int t : table.columns[col.ordinal].labels) {
      if (!truth.empty()) truth += ",";
      truth += registry.info(t).name;
    }
    std::printf("%-20s %-28s %-28s %s\n", col.column_name.c_str(),
                detected.c_str(), truth.c_str(),
                col.went_to_p2 ? "P2 (content scanned)" : "P1 (metadata only)");
  }
  std::printf("\ncolumns scanned: %d / %d\n", result->columns_scanned,
              result->total_columns);
  auto snap = (*db)->ledger().snapshot();
  std::printf("database cost: %lld queries, %lld cells transferred, "
              "%.1f ms simulated I/O\n",
              static_cast<long long>(snap.queries),
              static_cast<long long>(snap.scanned_cells),
              snap.simulated_io_ms);
  return 0;
}
