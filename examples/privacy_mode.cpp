// Privacy mode: tenants who refuse any content access (paper Secs. 3.2 and
// 6.4). Setting alpha == beta collapses the uncertainty interval, so TASTE
// never launches Phase 2 — detection runs on metadata alone.
//
// The example quantifies the privacy/accuracy trade by evaluating the same
// trained model in both modes on the same held-out tables.

#include <cstdio>

#include "core/taste_detector.h"
#include "data/table_generator.h"
#include "eval/experiment.h"

using namespace taste;

int main() {
  // Matches the benches' standard stack so the trained checkpoint in
  // .taste_model_cache is shared; the first run trains (~minutes on one
  // core), later runs load instantly.
  eval::StackOptions options;
  options.num_tables = 240;
  options.pretrain_epochs = 1;
  options.finetune_epochs = 12;
  options.train_adtd_hist = false;
  options.train_baselines = false;
  std::printf("Preparing models (cached after the first run)...\n");
  auto stack = eval::BuildStack(data::DatasetProfile::WikiLike(), options);
  if (!stack.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 stack.status().ToString().c_str());
    return 1;
  }
  clouddb::CostModel cost;
  cost.time_scale = 0.0;  // accuracy comparison only; skip real sleeps
  auto db = eval::MakeTestDatabase(stack->dataset, stack->dataset.test,
                                   /*with_histograms=*/false, cost);
  if (!db.ok()) return 1;

  auto evaluate = [&](const core::TasteOptions& topt) {
    core::TasteDetector det(stack->adtd.get(), stack->tokenizer.get(), topt);
    auto run = eval::EvaluateSequential(
        [&det](clouddb::Connection* conn, const std::string& name) {
          return det.DetectTable(conn, name);
        },
        db->get(), stack->dataset, stack->dataset.test);
    TASTE_CHECK(run.ok());
    return *run;
  };

  core::TasteOptions full;           // alpha=0.1, beta=0.9: P2 on demand
  core::TasteOptions metadata_only;  // alpha=beta=0.5: never scan
  metadata_only.alpha = 0.5;
  metadata_only.beta = 0.5;

  eval::EvalRunResult a = evaluate(full);
  eval::EvalRunResult b = evaluate(metadata_only);

  std::printf("\n%-28s %10s %10s %10s %14s\n", "mode", "precision", "recall",
              "F1", "cols scanned");
  std::printf("%-28s %10.4f %10.4f %10.4f %13.1f%%\n",
              "TASTE (alpha=0.1, beta=0.9)", a.scores.precision,
              a.scores.recall, a.scores.f1, 100.0 * a.scanned_ratio());
  std::printf("%-28s %10.4f %10.4f %10.4f %13.1f%%\n",
              "TASTE w/o P2 (privacy)", b.scores.precision, b.scores.recall,
              b.scores.f1, 100.0 * b.scanned_ratio());
  std::printf("\nMetadata-only mode gives up %.4f F1 and never touches "
              "tenant data.\n",
              a.scores.f1 - b.scores.f1);
  return 0;
}
