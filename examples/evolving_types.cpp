// Evolving the deployment — the paper's future-work directions (Sec. 8),
// implemented: a cloud service whose semantic type domain GROWS after
// deployment, and whose tenants CORRECT detections.
//
//  1. Train an ADTD model on a reduced domain (20 of the 46 types).
//  2. The catalog later registers the remaining types: extend the model's
//     classifier (encoder untouched) and fine-tune ONLY the classifier
//     heads — a cheap adaptation, not a retrain.
//  3. A tenant rejects one detection and confirms another: the feedback
//     store patches results immediately, and the same classifier-only
//     fine-tune path can fold the corrections into the weights.

#include <cstdio>

#include "core/feedback.h"
#include "core/taste_detector.h"
#include "data/table_generator.h"
#include "eval/experiment.h"
#include "model/extension.h"
#include "model/trainer.h"

using namespace taste;

namespace {

double EvaluateF1(const model::AdtdModel& m,
                  const text::WordPieceTokenizer& tok,
                  const data::Dataset& ds) {
  clouddb::CostModel cost;
  cost.time_scale = 0.0;
  auto db = eval::MakeTestDatabase(ds, ds.test, false, cost);
  TASTE_CHECK(db.ok());
  core::TasteDetector det(&m, &tok, {});
  auto run = eval::EvaluateSequential(
      [&det](clouddb::Connection* c, const std::string& n) {
        return det.DetectTable(c, n);
      },
      db->get(), ds, ds.test);
  TASTE_CHECK(run.ok());
  return run->scores.f1;
}

}  // namespace

int main() {
  const auto& registry = data::SemanticTypeRegistry::Default();
  data::Dataset dataset =
      data::GenerateDataset(data::DatasetProfile::WikiLike(160));
  text::WordPieceTrainer trainer({.vocab_size = 700});
  for (const auto& d : data::BuildCorpusDocuments(dataset)) {
    trainer.AddDocument(d);
  }
  text::WordPieceTokenizer tokenizer(trainer.Train());

  // ---- 1. Deploy with a reduced domain -----------------------------------
  auto initial_types = data::SelectRetainedTypes(registry, 20, /*seed=*/42);
  data::TypeRemap remap = data::TypeRemap::ForRetained(initial_types, registry);
  data::Dataset local = data::RemapLabels(dataset, remap, registry);

  model::AdtdConfig cfg = model::AdtdConfig::Tiny(tokenizer.vocab().size(),
                                                  remap.num_local_types());
  Rng rng(7);
  model::AdtdModel model(cfg, rng);
  model::FineTuner tuner(&model, &tokenizer);
  model::FineTuneOptions ft;
  ft.epochs = 8;
  std::printf("Training the initial model on %d types...\n",
              remap.num_local_types());
  TASTE_CHECK(tuner.Train(local, local.train, ft).ok());
  std::printf("Initial F1 (20-type domain): %.4f\n",
              EvaluateF1(model, tokenizer, local));

  // ---- 2. The domain set grows --------------------------------------------
  std::vector<int> new_types;
  for (int g = 0; g < registry.size(); ++g) {
    if (!remap.Covers(g)) new_types.push_back(g);
  }
  std::printf("\nRegistering %zu new semantic types...\n", new_types.size());
  remap.Extend(new_types);
  Rng rng2(8);
  auto grown =
      model::ExtendAdtdModel(model, remap.num_local_types(), rng2);
  TASTE_CHECK(grown.ok());
  data::Dataset full_local = data::RemapLabels(dataset, remap, registry);
  model::FineTuner adapt_tuner(grown->get(), &tokenizer);
  model::FineTuneOptions adapt;
  adapt.epochs = 8;
  adapt.classifier_only = true;  // encoder frozen: cheap adaptation
  TASTE_CHECK(adapt_tuner.Train(full_local, full_local.train, adapt).ok());
  std::printf("F1 after classifier-only adaptation (%d-type domain): %.4f\n",
              remap.num_local_types(),
              EvaluateF1(**grown, tokenizer, full_local));

  // ---- 3. Tenant feedback --------------------------------------------------
  clouddb::CostModel cost;
  cost.time_scale = 0.0;
  auto db = eval::MakeTestDatabase(full_local, full_local.test, false, cost);
  TASTE_CHECK(db.ok());
  core::TasteDetector detector(grown->get(), &tokenizer, {});
  auto conn = (*db)->Connect();
  const data::TableSpec& table =
      full_local.tables[full_local.test[0]];
  auto before = detector.DetectTable(conn.get(), table.name);
  TASTE_CHECK(before.ok());

  core::FeedbackStore feedback;
  // Tenant: "column 0's first detection is wrong; its true type is X".
  const auto& col = before->columns[0];
  if (!col.admitted_types.empty()) {
    feedback.Add({table.name, col.column_name, col.admitted_types[0],
                  /*confirmed=*/false});
  }
  feedback.Add({table.name, col.column_name, table.columns[0].labels[0],
                /*confirmed=*/true});

  auto after = *before;
  int changed = feedback.ApplyOverrides(&after);
  std::printf("\nFeedback applied: %d column(s) corrected immediately.\n",
              changed);
  // And the same corrections become training data:
  data::Dataset fb =
      core::BuildFeedbackDataset(full_local, feedback, registry);
  model::FineTuneOptions fb_opt;
  fb_opt.epochs = 2;
  fb_opt.classifier_only = true;
  TASTE_CHECK(adapt_tuner.Train(fb, fb.train, fb_opt).ok());
  std::printf("Feedback folded into the model via classifier-only "
              "fine-tuning on %zu table(s).\n",
              fb.tables.size());
  return 0;
}
