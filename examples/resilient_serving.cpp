// Resilient serving: run a batch detection against a FLAKY cloud database
// — transient timeouts, latency spikes, and one hard-failed table — and
// watch the fault-tolerance layer absorb it: transient errors are retried
// with backoff, the dead table degrades to the Phase-1 metadata-only
// prediction instead of sinking the batch, and every outcome is tagged
// with its provenance in the result JSON.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/resilient_serving

#include <cstdio>
#include <memory>

#include "clouddb/fault_injector.h"
#include "core/result_json.h"
#include "core/taste_detector.h"
#include "data/table_generator.h"
#include "eval/experiment.h"
#include "pipeline/scheduler.h"

using namespace taste;

int main() {
  // 1) Train (or load the cached) TASTE stack — same checkpoint as the
  //    quickstart and the benches.
  eval::StackOptions options;
  options.num_tables = 240;
  options.pretrain_epochs = 1;
  options.finetune_epochs = 12;
  options.train_adtd_hist = false;
  options.train_baselines = false;
  std::printf("Training the ADTD model (cached after the first run)...\n");
  auto stack = eval::BuildStack(data::DatasetProfile::WikiLike(), options);
  if (!stack.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 stack.status().ToString().c_str());
    return 1;
  }

  clouddb::CostModel cost;
  cost.time_scale = 0.2;  // realize simulated latency at 20%
  auto db = eval::MakeTestDatabase(stack->dataset, stack->dataset.test,
                                   /*with_histograms=*/false, cost);
  if (!db.ok()) {
    std::fprintf(stderr, "db setup failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> names;
  for (int idx : stack->dataset.test) {
    names.push_back(stack->dataset.tables[idx].name);
  }

  // 2) Make the database flaky: 15% of queries time out, 10% suffer a
  //    latency spike, and one table's content is entirely unreachable
  //    (dropped mid-batch / access revoked).
  clouddb::FaultConfig faults;
  faults.seed = 42;
  faults.timeout_prob = 0.15;
  faults.latency_spike_prob = 0.10;
  faults.unavailable_tables = {names.front()};
  (*db)->SetFaultInjector(std::make_shared<clouddb::FaultInjector>(faults));
  std::printf("\nInjected faults: 15%% timeouts, 10%% latency spikes, "
              "table '%s' scan-unavailable\n",
              names.front().c_str());

  // 3) A resilient detector: retry transients (capped exponential backoff,
  //    deterministic jitter), circuit-break dead tables, and degrade to
  //    the metadata-only prediction when content cannot be read. Threshold
  //    0.5 applies the paper's Table 4 privacy-mode admission rule to the
  //    degraded columns (metadata-only P1 holds F1 ~ 0.90 there).
  core::TasteOptions taste_options;
  taste_options.resilience.enabled = true;
  taste_options.resilience.retry.max_attempts = 5;
  taste_options.resilience.degraded_admit_threshold = 0.5;
  core::TasteDetector detector(stack->adtd.get(), stack->tokenizer.get(),
                               taste_options);

  // 4) Pipelined batch run with per-table failure isolation.
  pipeline::PipelineExecutor exec(&detector, db->get(),
                                  {.prep_threads = 2, .infer_threads = 2});
  pipeline::BatchResult batch = exec.RunBatch(names);

  int ok = 0, degraded_tables = 0;
  for (const auto& t : batch.tables) {
    if (!t.status.ok()) continue;
    ++ok;
    if (t.result.degraded_columns > 0) ++degraded_tables;
  }
  std::printf("\nBatch of %zu tables: %d ok (%d served partly from "
              "metadata), %d failed, %.0f ms wall\n",
              batch.tables.size(), ok, degraded_tables,
              static_cast<int>(batch.tables.size()) - ok,
              exec.stats().wall_ms);

  const auto& rz = exec.resilience_stats();
  std::printf("Resilience: %lld retries, %lld stage re-runs, %lld degraded "
              "columns, %lld failed columns, %lld breaker trips\n",
              static_cast<long long>(rz.retries),
              static_cast<long long>(rz.stage_retries),
              static_cast<long long>(rz.degraded_columns),
              static_cast<long long>(rz.failed_columns),
              static_cast<long long>(rz.breaker_trips));

  // 5) Provenance flows into the result JSON: degraded columns carry
  //    "provenance": "degraded_metadata_only" and the table a resilience
  //    block, so downstream consumers can tell a full prediction from a
  //    metadata-only fallback.
  const auto& registry = data::SemanticTypeRegistry::Default();
  for (const auto& t : batch.tables) {
    if (t.result.degraded_columns == 0) continue;
    core::JsonOptions json;
    json.pretty = true;
    std::printf("\nDegraded table's result JSON:\n%s\n",
                core::ResultToJson(t.result, registry, json).c_str());
    break;
  }
  return 0;
}
