// Data-catalog tagging: the Purview/Glue-style scenario (paper Sec. 2.1).
// A catalog service auto-tags every column of a tenant's GitTables-like
// database — most columns carry highly informative names and ~32% carry no
// semantic type at all, so the metadata phase resolves nearly everything
// and content scans are rare.
//
// Demonstrates: GitLike profile, the background type, per-type tag
// inventory, and the scanned-columns intrusiveness metric.

#include <cstdio>
#include <map>

#include "core/taste_detector.h"
#include "data/table_generator.h"
#include "eval/experiment.h"
#include "pipeline/scheduler.h"

using namespace taste;

int main() {
  // Matches the benches' standard stack so the trained checkpoint in
  // .taste_model_cache is shared; the first run trains (~minutes on one
  // core), later runs load instantly.
  eval::StackOptions options;
  options.num_tables = 240;
  options.pretrain_epochs = 1;
  options.finetune_epochs = 28;  // matches the benches' GitLike budget
  options.train_adtd_hist = false;
  options.train_baselines = false;
  std::printf("Preparing models (cached after the first run)...\n");
  auto stack = eval::BuildStack(data::DatasetProfile::GitLike(), options);
  if (!stack.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 stack.status().ToString().c_str());
    return 1;
  }
  auto db = eval::MakeTestDatabase(stack->dataset, stack->dataset.test,
                                   /*with_histograms=*/false, {});
  if (!db.ok()) return 1;

  core::TasteDetector detector(stack->adtd.get(), stack->tokenizer.get(), {});
  pipeline::PipelineExecutor executor(&detector, db->get(), {});
  std::vector<std::string> names;
  for (int idx : stack->dataset.test) {
    names.push_back(stack->dataset.tables[idx].name);
  }
  auto results = executor.Run(names);
  if (!results.ok()) {
    std::fprintf(stderr, "tagging failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }

  const auto& registry = data::SemanticTypeRegistry::Default();
  std::map<std::string, int> tag_counts;
  int untagged = 0, total_cols = 0, scanned = 0;
  for (const auto& table : *results) {
    total_cols += table.total_columns;
    scanned += table.columns_scanned;
    for (const auto& col : table.columns) {
      bool tagged = false;
      for (int t : col.admitted_types) {
        if (t == registry.null_type_id()) continue;
        ++tag_counts[registry.info(t).name];
        tagged = true;
      }
      if (!tagged) ++untagged;
    }
  }

  std::printf("\nCatalog tag inventory (%zu tables, %d columns)\n",
              results->size(), total_cols);
  for (const auto& [tag, count] : tag_counts) {
    std::printf("  %-18s %d\n", tag.c_str(), count);
  }
  std::printf("  %-18s %d\n", "(untagged)", untagged);
  std::printf("\nColumns scanned for content: %d of %d (%.1f%%) — "
              "metadata did the rest.\n",
              scanned, total_cols,
              total_cols ? 100.0 * scanned / total_cols : 0.0);
  std::printf("Wall clock: %.0f ms (pipelined, 2 prep + 2 infer threads).\n",
              executor.stats().wall_ms);
  return 0;
}
