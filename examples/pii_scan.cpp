// PII scan: the data-protection scenario from the paper's introduction.
// A cloud data-security service sweeps a tenant's database for columns
// holding personally identifiable information (credit cards, SSNs, emails,
// phone numbers, ...) so they can be masked — while touching as little of
// the tenant's data as possible.
//
// The sweep runs the full pipelined TASTE framework and then reports every
// PII column found, how it was found (metadata alone vs content check),
// and the total intrusion into the tenant database.

#include <cstdio>
#include <set>

#include "core/taste_detector.h"
#include "data/table_generator.h"
#include "eval/experiment.h"
#include "pipeline/scheduler.h"

using namespace taste;

int main() {
  const auto& registry = data::SemanticTypeRegistry::Default();
  // The sensitive types this service masks.
  const std::set<std::string> kPiiTypes = {
      "credit_card", "ssn",   "email",          "phone_number",
      "full_name",   "first_name", "last_name", "street_address",
      "account_number"};

  // Matches the benches' standard stack so the trained checkpoint in
  // .taste_model_cache is shared; the first run trains (~minutes on one
  // core), later runs load instantly.
  eval::StackOptions options;
  options.num_tables = 240;
  options.pretrain_epochs = 1;
  options.finetune_epochs = 12;
  options.train_adtd_hist = false;
  options.train_baselines = false;
  std::printf("Preparing models (cached after the first run)...\n");
  auto stack = eval::BuildStack(data::DatasetProfile::WikiLike(), options);
  if (!stack.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 stack.status().ToString().c_str());
    return 1;
  }

  auto db = eval::MakeTestDatabase(stack->dataset, stack->dataset.test,
                                   /*with_histograms=*/false, {});
  if (!db.ok()) return 1;

  core::TasteDetector detector(stack->adtd.get(), stack->tokenizer.get(), {});
  pipeline::PipelineExecutor executor(&detector, db->get(),
                                      {.prep_threads = 2, .infer_threads = 2});
  std::vector<std::string> names;
  for (int idx : stack->dataset.test) {
    names.push_back(stack->dataset.tables[idx].name);
  }
  auto results = executor.Run(names);
  if (!results.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }

  std::printf("\nPII findings\n");
  std::printf("%-22s %-20s %-16s %s\n", "table", "column", "pii type", "how");
  int findings = 0, total_cols = 0, scanned = 0;
  for (const auto& table : *results) {
    total_cols += table.total_columns;
    scanned += table.columns_scanned;
    for (const auto& col : table.columns) {
      for (int t : col.admitted_types) {
        if (kPiiTypes.count(registry.info(t).name) == 0) continue;
        std::printf("%-22s %-20s %-16s %s\n", table.table_name.c_str(),
                    col.column_name.c_str(), registry.info(t).name.c_str(),
                    col.went_to_p2 ? "content verified" : "metadata only");
        ++findings;
      }
    }
  }
  std::printf("\n%d PII columns flagged across %zu tables.\n", findings,
              results->size());
  std::printf("Intrusion: scanned %d of %d columns (%.1f%%) in %.0f ms "
              "wall clock.\n",
              scanned, total_cols,
              total_cols ? 100.0 * scanned / total_cols : 0.0,
              executor.stats().wall_ms);
  return 0;
}
