file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_null_ratio.dir/bench_fig6_null_ratio.cc.o"
  "CMakeFiles/bench_fig6_null_ratio.dir/bench_fig6_null_ratio.cc.o.d"
  "bench_fig6_null_ratio"
  "bench_fig6_null_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_null_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
