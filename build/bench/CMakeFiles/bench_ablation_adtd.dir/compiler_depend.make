# Empty compiler generated dependencies file for bench_ablation_adtd.
# This may be replaced when dependencies are built.
