file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_adtd.dir/bench_ablation_adtd.cc.o"
  "CMakeFiles/bench_ablation_adtd.dir/bench_ablation_adtd.cc.o.d"
  "bench_ablation_adtd"
  "bench_ablation_adtd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_adtd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
