# Empty dependencies file for bench_fig5_scanned_columns.
# This may be replaced when dependencies are built.
