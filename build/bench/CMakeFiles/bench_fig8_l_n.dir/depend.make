# Empty dependencies file for bench_fig8_l_n.
# This may be replaced when dependencies are built.
