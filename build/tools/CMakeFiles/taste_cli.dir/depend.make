# Empty dependencies file for taste_cli.
# This may be replaced when dependencies are built.
