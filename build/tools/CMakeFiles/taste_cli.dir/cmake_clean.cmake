file(REMOVE_RECURSE
  "CMakeFiles/taste_cli.dir/taste_cli.cc.o"
  "CMakeFiles/taste_cli.dir/taste_cli.cc.o.d"
  "taste_cli"
  "taste_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taste_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
