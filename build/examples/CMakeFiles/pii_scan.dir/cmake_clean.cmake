file(REMOVE_RECURSE
  "CMakeFiles/pii_scan.dir/pii_scan.cpp.o"
  "CMakeFiles/pii_scan.dir/pii_scan.cpp.o.d"
  "pii_scan"
  "pii_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pii_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
