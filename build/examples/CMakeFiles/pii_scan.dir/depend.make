# Empty dependencies file for pii_scan.
# This may be replaced when dependencies are built.
