# Empty dependencies file for evolving_types.
# This may be replaced when dependencies are built.
