file(REMOVE_RECURSE
  "CMakeFiles/evolving_types.dir/evolving_types.cpp.o"
  "CMakeFiles/evolving_types.dir/evolving_types.cpp.o.d"
  "evolving_types"
  "evolving_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evolving_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
