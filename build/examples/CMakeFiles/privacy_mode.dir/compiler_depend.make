# Empty compiler generated dependencies file for privacy_mode.
# This may be replaced when dependencies are built.
