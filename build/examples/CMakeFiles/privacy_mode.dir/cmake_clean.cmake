file(REMOVE_RECURSE
  "CMakeFiles/privacy_mode.dir/privacy_mode.cpp.o"
  "CMakeFiles/privacy_mode.dir/privacy_mode.cpp.o.d"
  "privacy_mode"
  "privacy_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
