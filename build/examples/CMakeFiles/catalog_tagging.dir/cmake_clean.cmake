file(REMOVE_RECURSE
  "CMakeFiles/catalog_tagging.dir/catalog_tagging.cpp.o"
  "CMakeFiles/catalog_tagging.dir/catalog_tagging.cpp.o.d"
  "catalog_tagging"
  "catalog_tagging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_tagging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
