# Empty dependencies file for catalog_tagging.
# This may be replaced when dependencies are built.
