
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/taste_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/taste_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/taste_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/taste_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/taste_model.dir/DependInfo.cmake"
  "/root/repo/build/src/clouddb/CMakeFiles/taste_clouddb.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/taste_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/taste_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/taste_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/taste_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/taste_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
