file(REMOVE_RECURSE
  "CMakeFiles/clouddb_test.dir/clouddb_test.cc.o"
  "CMakeFiles/clouddb_test.dir/clouddb_test.cc.o.d"
  "clouddb_test"
  "clouddb_test.pdb"
  "clouddb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clouddb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
