# Empty compiler generated dependencies file for clouddb_test.
# This may be replaced when dependencies are built.
