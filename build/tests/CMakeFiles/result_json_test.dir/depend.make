# Empty dependencies file for result_json_test.
# This may be replaced when dependencies are built.
