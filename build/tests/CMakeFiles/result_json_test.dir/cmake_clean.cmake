file(REMOVE_RECURSE
  "CMakeFiles/result_json_test.dir/result_json_test.cc.o"
  "CMakeFiles/result_json_test.dir/result_json_test.cc.o.d"
  "result_json_test"
  "result_json_test.pdb"
  "result_json_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/result_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
