# Empty dependencies file for taste_data.
# This may be replaced when dependencies are built.
