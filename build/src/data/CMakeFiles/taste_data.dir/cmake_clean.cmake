file(REMOVE_RECURSE
  "CMakeFiles/taste_data.dir/dataset.cc.o"
  "CMakeFiles/taste_data.dir/dataset.cc.o.d"
  "CMakeFiles/taste_data.dir/semantic_types.cc.o"
  "CMakeFiles/taste_data.dir/semantic_types.cc.o.d"
  "CMakeFiles/taste_data.dir/table_generator.cc.o"
  "CMakeFiles/taste_data.dir/table_generator.cc.o.d"
  "CMakeFiles/taste_data.dir/wordlists.cc.o"
  "CMakeFiles/taste_data.dir/wordlists.cc.o.d"
  "libtaste_data.a"
  "libtaste_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taste_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
