
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/taste_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/taste_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/semantic_types.cc" "src/data/CMakeFiles/taste_data.dir/semantic_types.cc.o" "gcc" "src/data/CMakeFiles/taste_data.dir/semantic_types.cc.o.d"
  "/root/repo/src/data/table_generator.cc" "src/data/CMakeFiles/taste_data.dir/table_generator.cc.o" "gcc" "src/data/CMakeFiles/taste_data.dir/table_generator.cc.o.d"
  "/root/repo/src/data/wordlists.cc" "src/data/CMakeFiles/taste_data.dir/wordlists.cc.o" "gcc" "src/data/CMakeFiles/taste_data.dir/wordlists.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/taste_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
