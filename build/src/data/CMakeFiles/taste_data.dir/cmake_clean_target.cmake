file(REMOVE_RECURSE
  "libtaste_data.a"
)
