# Empty compiler generated dependencies file for taste_model.
# This may be replaced when dependencies are built.
