file(REMOVE_RECURSE
  "libtaste_model.a"
)
