
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/adtd.cc" "src/model/CMakeFiles/taste_model.dir/adtd.cc.o" "gcc" "src/model/CMakeFiles/taste_model.dir/adtd.cc.o.d"
  "/root/repo/src/model/extension.cc" "src/model/CMakeFiles/taste_model.dir/extension.cc.o" "gcc" "src/model/CMakeFiles/taste_model.dir/extension.cc.o.d"
  "/root/repo/src/model/features.cc" "src/model/CMakeFiles/taste_model.dir/features.cc.o" "gcc" "src/model/CMakeFiles/taste_model.dir/features.cc.o.d"
  "/root/repo/src/model/input_encoding.cc" "src/model/CMakeFiles/taste_model.dir/input_encoding.cc.o" "gcc" "src/model/CMakeFiles/taste_model.dir/input_encoding.cc.o.d"
  "/root/repo/src/model/latent_cache.cc" "src/model/CMakeFiles/taste_model.dir/latent_cache.cc.o" "gcc" "src/model/CMakeFiles/taste_model.dir/latent_cache.cc.o.d"
  "/root/repo/src/model/trainer.cc" "src/model/CMakeFiles/taste_model.dir/trainer.cc.o" "gcc" "src/model/CMakeFiles/taste_model.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/taste_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/taste_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/taste_text.dir/DependInfo.cmake"
  "/root/repo/build/src/clouddb/CMakeFiles/taste_clouddb.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/taste_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/taste_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
