file(REMOVE_RECURSE
  "CMakeFiles/taste_model.dir/adtd.cc.o"
  "CMakeFiles/taste_model.dir/adtd.cc.o.d"
  "CMakeFiles/taste_model.dir/extension.cc.o"
  "CMakeFiles/taste_model.dir/extension.cc.o.d"
  "CMakeFiles/taste_model.dir/features.cc.o"
  "CMakeFiles/taste_model.dir/features.cc.o.d"
  "CMakeFiles/taste_model.dir/input_encoding.cc.o"
  "CMakeFiles/taste_model.dir/input_encoding.cc.o.d"
  "CMakeFiles/taste_model.dir/latent_cache.cc.o"
  "CMakeFiles/taste_model.dir/latent_cache.cc.o.d"
  "CMakeFiles/taste_model.dir/trainer.cc.o"
  "CMakeFiles/taste_model.dir/trainer.cc.o.d"
  "libtaste_model.a"
  "libtaste_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taste_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
