# Empty compiler generated dependencies file for taste_pipeline.
# This may be replaced when dependencies are built.
