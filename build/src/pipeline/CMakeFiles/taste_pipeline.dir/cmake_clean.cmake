file(REMOVE_RECURSE
  "CMakeFiles/taste_pipeline.dir/scheduler.cc.o"
  "CMakeFiles/taste_pipeline.dir/scheduler.cc.o.d"
  "libtaste_pipeline.a"
  "libtaste_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taste_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
