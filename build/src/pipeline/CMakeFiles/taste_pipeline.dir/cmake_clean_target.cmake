file(REMOVE_RECURSE
  "libtaste_pipeline.a"
)
