file(REMOVE_RECURSE
  "CMakeFiles/taste_clouddb.dir/database.cc.o"
  "CMakeFiles/taste_clouddb.dir/database.cc.o.d"
  "CMakeFiles/taste_clouddb.dir/histogram.cc.o"
  "CMakeFiles/taste_clouddb.dir/histogram.cc.o.d"
  "libtaste_clouddb.a"
  "libtaste_clouddb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taste_clouddb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
