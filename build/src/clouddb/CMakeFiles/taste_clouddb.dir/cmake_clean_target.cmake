file(REMOVE_RECURSE
  "libtaste_clouddb.a"
)
