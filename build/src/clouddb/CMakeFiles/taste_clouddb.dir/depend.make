# Empty dependencies file for taste_clouddb.
# This may be replaced when dependencies are built.
