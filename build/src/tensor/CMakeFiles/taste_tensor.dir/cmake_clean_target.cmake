file(REMOVE_RECURSE
  "libtaste_tensor.a"
)
