# Empty dependencies file for taste_tensor.
# This may be replaced when dependencies are built.
