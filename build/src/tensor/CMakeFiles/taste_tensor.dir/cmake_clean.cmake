file(REMOVE_RECURSE
  "CMakeFiles/taste_tensor.dir/ops.cc.o"
  "CMakeFiles/taste_tensor.dir/ops.cc.o.d"
  "CMakeFiles/taste_tensor.dir/optimizer.cc.o"
  "CMakeFiles/taste_tensor.dir/optimizer.cc.o.d"
  "CMakeFiles/taste_tensor.dir/tensor.cc.o"
  "CMakeFiles/taste_tensor.dir/tensor.cc.o.d"
  "libtaste_tensor.a"
  "libtaste_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taste_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
