file(REMOVE_RECURSE
  "CMakeFiles/taste_nn.dir/layers.cc.o"
  "CMakeFiles/taste_nn.dir/layers.cc.o.d"
  "CMakeFiles/taste_nn.dir/module.cc.o"
  "CMakeFiles/taste_nn.dir/module.cc.o.d"
  "CMakeFiles/taste_nn.dir/serialize.cc.o"
  "CMakeFiles/taste_nn.dir/serialize.cc.o.d"
  "CMakeFiles/taste_nn.dir/transformer.cc.o"
  "CMakeFiles/taste_nn.dir/transformer.cc.o.d"
  "libtaste_nn.a"
  "libtaste_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taste_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
