file(REMOVE_RECURSE
  "libtaste_nn.a"
)
