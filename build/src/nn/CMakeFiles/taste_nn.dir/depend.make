# Empty dependencies file for taste_nn.
# This may be replaced when dependencies are built.
