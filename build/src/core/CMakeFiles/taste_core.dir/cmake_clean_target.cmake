file(REMOVE_RECURSE
  "libtaste_core.a"
)
