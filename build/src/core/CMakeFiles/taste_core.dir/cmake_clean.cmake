file(REMOVE_RECURSE
  "CMakeFiles/taste_core.dir/feedback.cc.o"
  "CMakeFiles/taste_core.dir/feedback.cc.o.d"
  "CMakeFiles/taste_core.dir/result_json.cc.o"
  "CMakeFiles/taste_core.dir/result_json.cc.o.d"
  "CMakeFiles/taste_core.dir/taste_detector.cc.o"
  "CMakeFiles/taste_core.dir/taste_detector.cc.o.d"
  "libtaste_core.a"
  "libtaste_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taste_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
