# Empty dependencies file for taste_core.
# This may be replaced when dependencies are built.
