file(REMOVE_RECURSE
  "libtaste_eval.a"
)
