# Empty compiler generated dependencies file for taste_eval.
# This may be replaced when dependencies are built.
