file(REMOVE_RECURSE
  "CMakeFiles/taste_eval.dir/experiment.cc.o"
  "CMakeFiles/taste_eval.dir/experiment.cc.o.d"
  "CMakeFiles/taste_eval.dir/metrics.cc.o"
  "CMakeFiles/taste_eval.dir/metrics.cc.o.d"
  "CMakeFiles/taste_eval.dir/report.cc.o"
  "CMakeFiles/taste_eval.dir/report.cc.o.d"
  "libtaste_eval.a"
  "libtaste_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taste_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
