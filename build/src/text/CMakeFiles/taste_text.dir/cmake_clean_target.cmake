file(REMOVE_RECURSE
  "libtaste_text.a"
)
