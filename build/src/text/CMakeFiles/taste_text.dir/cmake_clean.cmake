file(REMOVE_RECURSE
  "CMakeFiles/taste_text.dir/vocab.cc.o"
  "CMakeFiles/taste_text.dir/vocab.cc.o.d"
  "CMakeFiles/taste_text.dir/wordpiece.cc.o"
  "CMakeFiles/taste_text.dir/wordpiece.cc.o.d"
  "libtaste_text.a"
  "libtaste_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taste_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
