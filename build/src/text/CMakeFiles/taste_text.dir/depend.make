# Empty dependencies file for taste_text.
# This may be replaced when dependencies are built.
