file(REMOVE_RECURSE
  "libtaste_baselines.a"
)
