# Empty compiler generated dependencies file for taste_baselines.
# This may be replaced when dependencies are built.
