file(REMOVE_RECURSE
  "CMakeFiles/taste_baselines.dir/rule_based.cc.o"
  "CMakeFiles/taste_baselines.dir/rule_based.cc.o.d"
  "CMakeFiles/taste_baselines.dir/single_tower.cc.o"
  "CMakeFiles/taste_baselines.dir/single_tower.cc.o.d"
  "libtaste_baselines.a"
  "libtaste_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taste_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
