
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/rule_based.cc" "src/baselines/CMakeFiles/taste_baselines.dir/rule_based.cc.o" "gcc" "src/baselines/CMakeFiles/taste_baselines.dir/rule_based.cc.o.d"
  "/root/repo/src/baselines/single_tower.cc" "src/baselines/CMakeFiles/taste_baselines.dir/single_tower.cc.o" "gcc" "src/baselines/CMakeFiles/taste_baselines.dir/single_tower.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/taste_model.dir/DependInfo.cmake"
  "/root/repo/build/src/clouddb/CMakeFiles/taste_clouddb.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/taste_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/taste_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/taste_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/taste_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/taste_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
