# Empty dependencies file for taste_common.
# This may be replaced when dependencies are built.
