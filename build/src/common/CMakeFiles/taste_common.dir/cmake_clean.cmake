file(REMOVE_RECURSE
  "CMakeFiles/taste_common.dir/logging.cc.o"
  "CMakeFiles/taste_common.dir/logging.cc.o.d"
  "CMakeFiles/taste_common.dir/status.cc.o"
  "CMakeFiles/taste_common.dir/status.cc.o.d"
  "CMakeFiles/taste_common.dir/string_util.cc.o"
  "CMakeFiles/taste_common.dir/string_util.cc.o.d"
  "CMakeFiles/taste_common.dir/thread_pool.cc.o"
  "CMakeFiles/taste_common.dir/thread_pool.cc.o.d"
  "libtaste_common.a"
  "libtaste_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taste_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
