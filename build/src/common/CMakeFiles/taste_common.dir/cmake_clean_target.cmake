file(REMOVE_RECURSE
  "libtaste_common.a"
)
